// Saturating counters — the basic state element of the MAT, SLDT and the
// bimodal branch predictor.
#pragma once

#include <cstdint>

#include "support/check.h"

namespace selcache {

/// An n-valued saturating up/down counter in [0, max].
template <typename T = std::uint32_t>
class SaturatingCounter {
 public:
  constexpr SaturatingCounter() = default;
  constexpr SaturatingCounter(T max, T initial) : max_(max), value_(initial) {
    SELCACHE_CHECK(initial <= max);
  }

  constexpr void increment(T by = 1) {
    value_ = (max_ - value_ < by) ? max_ : value_ + by;
  }

  constexpr void decrement(T by = 1) { value_ = (value_ < by) ? 0 : value_ - by; }

  /// Halve the counter — used for periodic MAT decay so that stale phases
  /// eventually lose their frequency advantage.
  constexpr void decay() { value_ /= 2; }

  constexpr void reset(T v = 0) { value_ = v > max_ ? max_ : v; }

  /// Fault-injection backdoor: store `raw` WITHOUT clamping to the ceiling.
  /// This is how a simulated bit-flip produces a value the integrity checks
  /// can actually catch (every regular mutator keeps value <= max by
  /// construction). Never called outside the fault layer and its tests.
  constexpr void corrupt(T raw) { value_ = raw; }

  constexpr T value() const { return value_; }
  constexpr T max() const { return max_; }
  constexpr bool saturated() const { return value_ == max_; }

  /// First value that counts as "upper half": ceil(max / 2), computed
  /// overflow-safely. For odd max (even-sized range, e.g. 2-bit max=3) this
  /// is the classic max/2 + 1 = 2, splitting {0,1} / {2,3}. For even max
  /// (odd-sized range, e.g. max=4) the midpoint value max/2 is *included* in
  /// the upper half ({0,1} / {2,3,4}), so a counter with an even ceiling
  /// does not need a strict majority of its range to count as "high".
  /// (Earlier revisions used `value > max/2`, which for even max silently
  /// demoted the midpoint and biased those counters low.)
  constexpr T threshold() const { return max_ / 2 + max_ % 2; }

  /// For 2-bit predictor-style use: true when in the upper half of the range
  /// (value >= threshold()). See threshold() for the even-max semantics.
  constexpr bool upper_half() const { return value_ >= threshold(); }

 private:
  T max_ = 3;
  T value_ = 0;
};

using Counter2Bit = SaturatingCounter<std::uint8_t>;

}  // namespace selcache
