// Fixed-size worker pool with a FIFO task queue and future-based results.
//
// Built for the parallel experiment engine: each submitted task is an
// independent simulation owning all of its state, so the pool needs no
// shared-data machinery beyond the queue itself. Tasks run in submission
// order (FIFO dispatch); with one worker the pool degenerates to strictly
// serial execution, which the determinism tests rely on.
//
// Exceptions thrown by a task are captured in its future and rethrown at
// get(), never on the worker thread. Destruction drains the queue: every
// task submitted before ~ThreadPool() runs to completion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace selcache::support {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Waits for all queued and running tasks to finish, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. The callable's
  /// exceptions propagate through the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t num_threads() const { return workers_.size(); }

  /// Tasks neither started nor finished yet (snapshot; racy by nature).
  std::size_t pending() const;

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static unsigned hardware_threads();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace selcache::support
