// Fixed-size worker pool with a FIFO task queue and future-based results.
//
// Built for the parallel experiment engine: each submitted task is an
// independent simulation owning all of its state, so the pool needs no
// shared-data machinery beyond the queue itself. Tasks run in submission
// order (FIFO dispatch); with one worker the pool degenerates to strictly
// serial execution, which the determinism tests rely on.
//
// Exceptions thrown by a task are captured in its future and rethrown at
// get(), never on the worker thread — including during the drain that
// ~ThreadPool() performs, so a throwing task queued at destruction time is
// retained in its future instead of terminating the process. A callable
// that somehow throws outside its packaged_task wrapper (a broken_promise
// pathway, a hostile std::function) is swallowed by a worker-loop backstop
// and counted in stray_exceptions() rather than escaping the thread.
//
// Cooperative cancellation: request_stop() flips an atomic stop token and
// discards every not-yet-started task (their futures resolve with
// broken_promise — never a hang), while in-flight tasks run to completion.
// This is the drain path graceful shutdown rides on: a SIGINT mid-sweep
// abandons the queued cells, finishes or aborts the running ones, and the
// destructor joins promptly instead of simulating the rest of the sweep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace selcache::support {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one). If spawning worker k
  /// fails (resource exhaustion), the k-1 already-running workers are
  /// stopped and joined before the exception propagates — a partially
  /// constructed pool never leaks joinable threads (whose destruction
  /// would call std::terminate).
  explicit ThreadPool(std::size_t num_threads);

  /// Waits for all queued and running tasks to finish, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. The callable's
  /// exceptions propagate through the future.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Submissions after a stop request are dropped immediately: the
      // caller gets a future that reports broken_promise, the same way a
      // queued-but-discarded task does.
      if (!cancel_.load(std::memory_order_relaxed))
        queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Cooperative cancellation: discard every queued (not yet started) task
  /// — their futures resolve with std::future_error (broken_promise) — and
  /// let in-flight tasks finish. Idempotent; callable from any thread
  /// (including a task running on the pool).
  void request_stop();

  /// Has request_stop() been called?
  bool stop_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// The stop token as a pollable atomic (nonzero = stop), for handing to
  /// cooperative cancellation points inside running tasks.
  const std::atomic<bool>* stop_token() const { return &cancel_; }

  std::size_t num_threads() const { return workers_.size(); }

  /// Tasks neither started nor finished yet (snapshot; racy by nature).
  std::size_t pending() const;

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static unsigned hardware_threads();

  /// Tasks whose exception escaped the packaged_task wrapper and was
  /// absorbed by the worker-loop backstop. Always 0 for tasks entered via
  /// submit(); a nonzero value means a raw queue entry misbehaved.
  std::uint64_t stray_exceptions() const { return stray_exceptions_.load(); }

  /// Test/fault-injection hook: invoked with the worker index just before
  /// each std::thread is spawned; throwing simulates thread-creation
  /// failure at that point. Process-global and unsynchronized — set it
  /// only from single-threaded test setup, and reset to nullptr after.
  static std::function<void(std::size_t)>& spawn_fault_hook();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;                 ///< destructor drain (completes queue)
  std::atomic<bool> cancel_{false};   ///< request_stop (discards queue)
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> stray_exceptions_{0};
};

}  // namespace selcache::support
