// Shared probe kernels for the 16-byte set-associative slot layout.
//
// Cache::Block and Tlb::Entry are deliberately the same shape — a 16-byte
// slot with the 64-bit key (tag / vpn) at offset 0, the 32-bit LRU stamp at
// offset 8, and the valid byte at offset 12 — so one kernel family serves
// both structures. Two kernels cover every set scan in the memory system:
//
//   match_way(set, n, key)  first way that is valid and whose key matches,
//                           or kNoWay — the tag-compare of a probe.
//   victim_way(set, n)      the way a miss would fill: the first invalid
//                           way if the set has one, else the minimum-LRU
//                           valid way (LRU stamps are strictly distinct, so
//                           the argmin is unique and no tie-break can drift).
//   probe_way(set, n, key)  match_way and victim_way fused into ONE pass:
//                           the demand path's scan. On a hit it is exactly
//                           match_way; on a miss the victim is derived from
//                           the same slot data the tag-compare already
//                           loaded, so a miss no longer walks the set twice.
//
// match_way is vectorized (SSE2 on x86-64, NEON on AArch64) with a scalar
// fallback that is always compiled; victim_way is a branch-lean scalar scan
// (conditional selects, no data-dependent branches) shared by both modes.
// Which path runs is decided once at startup — build capability gated by
// the SELCACHE_NO_SIMD environment variable — and can be overridden with
// force_scalar() (the CLI's --no-simd, and the equivalence tests that pin
// both paths against each other). Both paths implement the exact same
// first-match / first-free / min-LRU semantics, so switching kernels never
// changes a simulation result — only how fast it is produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define SELCACHE_SIMD_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SELCACHE_SIMD_NEON 1
#endif

namespace selcache::memsys::kernels {

inline constexpr std::uint32_t kNoWay = ~0u;

/// Byte offsets of the shared slot layout (static_asserted against both
/// Cache::Block and Tlb::Entry at their definition sites).
inline constexpr std::size_t kSlotBytes = 16;
inline constexpr std::size_t kSlotKeyOff = 0;
inline constexpr std::size_t kSlotLruOff = 8;
inline constexpr std::size_t kSlotValidOff = 12;

/// True when this build carries a vector path at all.
constexpr bool simd_compiled() {
#if defined(SELCACHE_SIMD_SSE2) || defined(SELCACHE_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

/// Name of the vector path compiled in (independent of runtime selection).
constexpr const char* simd_isa() {
#if defined(SELCACHE_SIMD_SSE2)
  return "sse2";
#elif defined(SELCACHE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace detail {
/// Startup-resolved dispatch: simd_compiled() && !SELCACHE_NO_SIMD. Written
/// only by force_scalar() — call it before simulations start, never while
/// they run (the hot path reads this without synchronization).
extern bool g_use_simd;

inline std::uint64_t slot_key(const unsigned char* s) {
  std::uint64_t k;
  std::memcpy(&k, s + kSlotKeyOff, sizeof(k));
  return k;
}
inline std::uint32_t slot_lru(const unsigned char* s) {
  std::uint32_t l;
  std::memcpy(&l, s + kSlotLruOff, sizeof(l));
  return l;
}
inline bool slot_valid(const unsigned char* s) {
  return s[kSlotValidOff] != 0;
}

inline std::uint32_t match_way_scalar(const unsigned char* p, std::uint32_t n,
                                      std::uint64_t key) {
  for (std::uint32_t w = 0; w < n; ++w, p += kSlotBytes)
    if (slot_valid(p) && slot_key(p) == key) return w;
  return kNoWay;
}

#if defined(SELCACHE_SIMD_SSE2)
/// 64-bit lane equality out of SSE2's 32-bit compare: equal halves ANDed
/// pairwise, so a lane is all-ones iff the full 64-bit values match.
inline __m128i cmpeq64_sse2(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32,
                       _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

inline std::uint32_t match_way_simd(const unsigned char* p, std::uint32_t n,
                                    std::uint64_t key) {
  const __m128i kv = _mm_set1_epi64x(static_cast<long long>(key));
  if (n == 4) {
    // The shipped configurations are 4-way: one 64-byte set, one mask.
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i v3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    // Keys live in the low 64 bits of each slot; pack them two per vector.
    const __m128i k01 = _mm_unpacklo_epi64(v0, v1);
    const __m128i k23 = _mm_unpacklo_epi64(v2, v3);
    const int eq =
        _mm_movemask_pd(_mm_castsi128_pd(cmpeq64_sse2(k01, kv))) |
        (_mm_movemask_pd(_mm_castsi128_pd(cmpeq64_sse2(k23, kv))) << 2);
    const int valid = (slot_valid(p) ? 1 : 0) | (slot_valid(p + 16) ? 2 : 0) |
                      (slot_valid(p + 32) ? 4 : 0) |
                      (slot_valid(p + 48) ? 8 : 0);
    const int m = eq & valid;
    return m != 0 ? static_cast<std::uint32_t>(__builtin_ctz(
                        static_cast<unsigned>(m)))
                  : kNoWay;
  }
  std::uint32_t w = 0;
  for (; w + 2 <= n; w += 2, p += 2 * kSlotBytes) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const int eq = _mm_movemask_pd(
        _mm_castsi128_pd(cmpeq64_sse2(_mm_unpacklo_epi64(v0, v1), kv)));
    if ((eq & 1) != 0 && slot_valid(p)) return w;
    if ((eq & 2) != 0 && slot_valid(p + 16)) return w + 1;
  }
  for (; w < n; ++w, p += kSlotBytes)
    if (slot_valid(p) && slot_key(p) == key) return w;
  return kNoWay;
}
#elif defined(SELCACHE_SIMD_NEON)
inline std::uint32_t match_way_simd(const unsigned char* p, std::uint32_t n,
                                    std::uint64_t key) {
  const uint64x2_t kv = vdupq_n_u64(key);
  std::uint32_t w = 0;
  for (; w + 2 <= n; w += 2, p += 2 * kSlotBytes) {
    // Keys live at slot offset 0; gather the pair with two 64-bit loads.
    std::uint64_t k0, k1;
    std::memcpy(&k0, p, sizeof(k0));
    std::memcpy(&k1, p + kSlotBytes, sizeof(k1));
    const uint64x2_t eq = vceqq_u64(vcombine_u64(vcreate_u64(k0),
                                                 vcreate_u64(k1)),
                                    kv);
    if (vgetq_lane_u64(eq, 0) != 0 && slot_valid(p)) return w;
    if (vgetq_lane_u64(eq, 1) != 0 && slot_valid(p + kSlotBytes)) return w + 1;
  }
  for (; w < n; ++w, p += kSlotBytes)
    if (slot_valid(p) && slot_key(p) == key) return w;
  return kNoWay;
}
#endif

}  // namespace detail

/// First way of `slots` that is valid with a matching key, else kNoWay.
/// `slots` is the first slot of a set laid out with the shared 16-byte
/// format; `n` is the associativity.
inline std::uint32_t match_way(const void* slots, std::uint32_t n,
                               std::uint64_t key) {
  const auto* p = static_cast<const unsigned char*>(slots);
#if defined(SELCACHE_SIMD_SSE2) || defined(SELCACHE_SIMD_NEON)
  if (detail::g_use_simd) return detail::match_way_simd(p, n, key);
#endif
  return detail::match_way_scalar(p, n, key);
}

/// Where a miss on this set would fill.
struct VictimWay {
  std::uint32_t way = 0;  ///< first invalid way, else the min-LRU valid way
  bool free = false;      ///< true when `way` is invalid (no eviction)
};

/// Miss-path scan: branch-lean conditional-select loop, no data-dependent
/// branches. LRU stamps are widened to 64 bits so the UINT32_MAX sentinel
/// cannot collide with a real stamp.
inline VictimWay victim_way(const void* slots, std::uint32_t n) {
  const auto* p = static_cast<const unsigned char*>(slots);
  std::uint32_t free_way = kNoWay;
  std::uint32_t lru_way = 0;
  std::uint64_t best = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < n; ++w, p += kSlotBytes) {
    const bool valid = detail::slot_valid(p);
    const std::uint64_t lru = detail::slot_lru(p);
    const bool take_free = !valid && free_way == kNoWay;
    free_way = take_free ? w : free_way;
    const bool take_lru = valid && lru < best;
    best = take_lru ? lru : best;
    lru_way = take_lru ? w : lru_way;
  }
  if (free_way != kNoWay) return {.way = free_way, .free = true};
  return {.way = lru_way, .free = false};
}

/// Outcome of a fused demand-path scan (probe_way).
struct ProbeResult {
  bool hit = false;
  std::uint32_t way = 0;  ///< hit way; on a miss, the way a fill would use
  bool free = false;      ///< miss only: `way` is an invalid (free) way
};

/// Tag-compare and victim preview fused into one pass over the set: exactly
/// match_way(), followed on a miss by exactly victim_way(), but the SIMD
/// 4-way path derives the victim from the slot vectors the tag-compare
/// already loaded instead of walking the set a second time.
inline ProbeResult probe_way(const void* slots, std::uint32_t n,
                             std::uint64_t key) {
#if defined(SELCACHE_SIMD_SSE2)
  if (detail::g_use_simd && n == 4) {
    const auto* p = static_cast<const unsigned char*>(slots);
    const __m128i kv = _mm_set1_epi64x(static_cast<long long>(key));
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i v2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i v3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    const __m128i k01 = _mm_unpacklo_epi64(v0, v1);
    const __m128i k23 = _mm_unpacklo_epi64(v2, v3);
    // High half of each slot is [lru:32 | valid:8 dirty:8 pad:16]; gather
    // the four LRU stamps and the four meta words into one vector each.
    const __m128i h01 = _mm_unpackhi_epi64(v0, v1);
    const __m128i h23 = _mm_unpackhi_epi64(v2, v3);
    const __m128i lru = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castsi128_ps(h01), _mm_castsi128_ps(h23),
                       _MM_SHUFFLE(2, 0, 2, 0)));
    const __m128i meta = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castsi128_ps(h01), _mm_castsi128_ps(h23),
                       _MM_SHUFFLE(3, 1, 3, 1)));
    const __m128i invalid = _mm_cmpeq_epi32(
        _mm_and_si128(meta, _mm_set1_epi32(0xFF)), _mm_setzero_si128());
    const int inv_mask = _mm_movemask_ps(_mm_castsi128_ps(invalid));
    const int eq =
        _mm_movemask_pd(_mm_castsi128_pd(detail::cmpeq64_sse2(k01, kv))) |
        (_mm_movemask_pd(_mm_castsi128_pd(detail::cmpeq64_sse2(k23, kv)))
         << 2);
    const int m = eq & ~inv_mask & 0xF;
    if (m != 0)
      return {.hit = true,
              .way = static_cast<std::uint32_t>(
                  __builtin_ctz(static_cast<unsigned>(m)))};
    if (inv_mask != 0)
      return {.way = static_cast<std::uint32_t>(
                  __builtin_ctz(static_cast<unsigned>(inv_mask))),
              .free = true};
    // Full set: every lane is a valid stamp and stamps are strictly
    // distinct, so the argmin is unique (same way victim_way picks).
    alignas(16) std::uint32_t l[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(l), lru);
    std::uint32_t way = 0;
    std::uint32_t best = l[0];
    way = l[1] < best ? 1u : way;
    best = l[1] < best ? l[1] : best;
    way = l[2] < best ? 2u : way;
    best = l[2] < best ? l[2] : best;
    way = l[3] < best ? 3u : way;
    return {.way = way};
  }
#endif
  // Scalar / odd-geometry path: the classic two kernels back to back.
  const std::uint32_t w = match_way(slots, n, key);
  if (w != kNoWay) return {.hit = true, .way = w};
  const VictimWay v = victim_way(slots, n);
  return {.way = v.way, .free = v.free};
}

/// Runtime dispatch state: true when the vector path is compiled in and not
/// disabled (SELCACHE_NO_SIMD env, force_scalar).
inline bool simd_active() { return detail::g_use_simd; }

/// Name of the kernel the next probe will run ("sse2" / "neon" / "scalar").
inline const char* active_kernel() {
  return detail::g_use_simd ? simd_isa() : "scalar";
}

/// Force the scalar fallback on (true) or restore the startup selection
/// (false). Not synchronized: call between simulations, not during one.
void force_scalar(bool on);

}  // namespace selcache::memsys::kernels
