#include "memsys/probe_kernels.h"

#include <cstdlib>

namespace selcache::memsys::kernels {
namespace detail {

namespace {
bool env_disables_simd() {
  const char* e = std::getenv("SELCACHE_NO_SIMD");
  if (e == nullptr || e[0] == '\0') return false;
  return !(e[0] == '0' && e[1] == '\0');  // SELCACHE_NO_SIMD=0 keeps SIMD on
}
}  // namespace

bool g_use_simd = simd_compiled() && !env_disables_simd();

}  // namespace detail

void force_scalar(bool on) {
  detail::g_use_simd = simd_compiled() && !on && !detail::env_disables_simd();
}

}  // namespace selcache::memsys::kernels
