// Set-associative cache with true-LRU replacement.
//
// The cache is a tag store only — the simulator tracks which blocks are
// resident, not their contents. Lookup (access) and placement (fill) are
// separate operations so the hardware bypassing scheme can interpose between
// a miss and the fill: it previews the would-be victim (victim_for), decides
// fill-vs-bypass, and only then calls fill().
//
// Hot-path engineering: block size is validated power-of-two, so tag and set
// extraction are a shift (plus a mask when the set count is also a power of
// two — true for every shipped configuration). access_with_victim() performs
// lookup, LRU update, and victim preview in ONE pass over the set, so the
// demand path never scans a set twice. The demand-path methods are defined
// here (not in the .cpp) so the hierarchy/timing chain inlines them, and a
// per-set way predictor — the way of the last hit or fill in each set —
// short-circuits the set scan. A global last-hit memo thrashes as soon as
// an inner loop walks two arrays; a per-set predictor keeps each stream's
// entry because distinct arrays land in distinct sets. The prediction is
// validated by the block's own (valid, tag) state, so every mutation path
// (fill, invalidate, flush) is covered without bookkeeping, and the fast
// path performs exactly the scan path's updates: same LRU stamp, same dirty
// bit, same counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "memsys/cache_config.h"
#include "memsys/probe_kernels.h"
#include "support/bitutil.h"
#include "support/stats.h"

namespace selcache::memsys {

/// A block that fell out of the cache during fill().
struct Eviction {
  Addr block_addr = 0;  ///< first byte address of the evicted block
  bool dirty = false;
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Outcome of a combined lookup + victim preview (one set scan).
  struct LookupResult {
    bool hit = false;
    /// On a miss: the way fill(addr) would use right now (first free way,
    /// else the LRU way) — valid input for fill_at() as long as the set is
    /// not mutated in between. Meaningless on a hit.
    std::uint32_t fill_way = 0;
    /// On a miss: the block fill(addr) would evict right now, or nullopt if
    /// the set still has a free way. Meaningless on a hit.
    std::optional<Addr> victim;
  };

  /// Look up the block containing `addr`; updates LRU and dirty state on a
  /// hit. Returns true on hit. Does NOT allocate on miss.
  bool access(Addr addr, bool is_write) {
    const Addr tag = tag_of(addr);
    const std::uint64_t si = set_index(addr);
    Block& pred = blocks_[si * cfg_.assoc + way_[si]];
    if (pred.valid && pred.tag == tag) {
      touch_hit(pred, is_write);
      return true;
    }
    return access_scan(si, tag, is_write);
  }

  /// Fused access + victim preview: exactly the observable behavior of
  /// access() followed (on a miss) by victim_for(), in a single scan of the
  /// set. This is the demand-path entry point used by the hierarchy.
  LookupResult access_with_victim(Addr addr, bool is_write) {
    const Addr tag = tag_of(addr);
    const std::uint64_t si = set_index(addr);
    Block& pred = blocks_[si * cfg_.assoc + way_[si]];
    if (pred.valid && pred.tag == tag) {
      touch_hit(pred, is_write);
      return {.hit = true, .victim = std::nullopt};
    }
    return access_with_victim_scan(si, tag, is_write);
  }

  /// Side-effect-free lookup.
  bool probe(Addr addr) const { return find(addr) != nullptr; }

  /// Address of the block that fill(addr) would evict right now, or nullopt
  /// if the set still has an invalid way (no eviction needed).
  std::optional<Addr> victim_for(Addr addr) const;

  /// Insert the block containing `addr` (LRU way replaced). Returns the
  /// eviction that occurred, if any. Must not be called while resident.
  std::optional<Eviction> fill(Addr addr, bool dirty);

  /// fill() without the victim-selection scan: `way` must be the fill_way
  /// previewed by access_with_victim() on this set, with no intervening
  /// mutation of the set. Exactly fill()'s updates, one line touched.
  std::optional<Eviction> fill_at(Addr addr, std::uint32_t way, bool dirty);

  /// First byte address of the block containing `addr`.
  Addr block_base_of(Addr addr) const {
    return (addr >> block_shift_) << block_shift_;
  }

  /// Remove the block containing `addr` if resident; returns its dirtiness.
  std::optional<bool> invalidate(Addr addr);

  /// Drop all blocks (statistics are kept).
  void flush();

  const CacheConfig& config() const { return cfg_; }
  const HitMiss& demand_stats() const { return demand_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t fills() const { return fills_; }
  std::uint64_t resident_blocks() const;

  /// Host-side prefetch of the set `addr` maps to — a pure performance hint
  /// for batched-replay lookahead. Touches no simulator state or statistics
  /// (a 4-way set is one 64-byte line, so one prefetch covers the scan).
  void prefetch_set(Addr addr) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&blocks_[set_index(addr) * cfg_.assoc]);
#endif
  }

  /// Set index of the block containing `addr` (public so tests can check the
  /// shift/mask form against the reference div/mod formula).
  std::uint64_t set_index(Addr addr) const {
    const Addr blk = addr >> block_shift_;
    return sets_pow2_ ? (blk & set_mask_) : (blk % num_sets_);
  }

  void export_stats(StatSet& out) const;

  /// Test-only: jump the LRU stamp counter to `v` so the next accesses
  /// drive it across the uint32_t wrap boundary without 2^32 warm-up
  /// accesses. Existing block stamps are untouched (they stay far below
  /// `v`, exactly as after a long real run).
  void debug_set_stamp(std::uint32_t v) { stamp_ = v; }
  std::uint32_t debug_stamp() const { return stamp_; }
  /// Test-only: LRU stamp of the resident block containing `addr`, or
  /// nullopt when absent. Lets wrap tests assert strict stamp distinctness
  /// across a renormalization.
  std::optional<std::uint32_t> debug_lru_of(Addr addr) const {
    const Block* b = find(addr);
    return b == nullptr ? std::nullopt : std::optional(b->lru);
  }

 private:
  /// 16 bytes so a 4-way set is one 64-byte line (the scan touches one line
  /// instead of two). The 32-bit LRU stamp is renormalized before it can
  /// wrap, preserving the exact recency order (see bump()).
  struct Block {
    Addr tag = 0;
    std::uint32_t lru = 0;  ///< per-cache stamp; larger = more recent
    bool valid = false;
    bool dirty = false;
  };
  static_assert(sizeof(Block) == kernels::kSlotBytes);
  // The probe kernels (memsys/probe_kernels.h) address tag/lru/valid by raw
  // byte offset — the layout shared with Tlb::Entry is part of their API.
  static_assert(offsetof(Block, tag) == kernels::kSlotKeyOff);
  static_assert(offsetof(Block, lru) == kernels::kSlotLruOff);
  static_assert(offsetof(Block, valid) == kernels::kSlotValidOff);

  Addr tag_of(Addr addr) const { return addr >> block_shift_; }
  Block* set_of(Addr addr) { return &blocks_[set_index(addr) * cfg_.assoc]; }
  const Block* set_of(Addr addr) const {
    return &blocks_[set_index(addr) * cfg_.assoc];
  }

  /// Next LRU stamp; renormalizes all stamps (order-preserving) before the
  /// 32-bit counter could wrap, so recency comparisons stay exact forever.
  std::uint32_t bump() {
    if (stamp_ == std::numeric_limits<std::uint32_t>::max()) renormalize();
    return ++stamp_;
  }

  /// The hit-path updates, identical for the memo and the scan route.
  void touch_hit(Block& b, bool is_write) {
    b.lru = bump();
    b.dirty = b.dirty || is_write;
    demand_.record(true);
  }

  Block* find(Addr addr) {
    Block* set = set_of(addr);
    const std::uint32_t w = kernels::match_way(set, cfg_.assoc, tag_of(addr));
    return w == kernels::kNoWay ? nullptr : &set[w];
  }
  const Block* find(Addr addr) const {
    return const_cast<Cache*>(this)->find(addr);
  }

  /// Slow paths (way prediction missed): full set scan.
  bool access_scan(std::uint64_t si, Addr tag, bool is_write);
  LookupResult access_with_victim_scan(std::uint64_t si, Addr tag,
                                       bool is_write);

  /// Reassign all LRU stamps to their rank in recency order (out of line;
  /// runs at most once per 2^32 stamps).
  void renormalize();

  CacheConfig cfg_;
  unsigned block_shift_ = 0;    ///< log2(block_size); block size is pow2
  std::uint64_t num_sets_ = 0;  ///< cached cfg_.num_sets()
  std::uint64_t set_mask_ = 0;  ///< num_sets-1 when sets_pow2_
  bool sets_pow2_ = false;      ///< fall back to modulo for odd set counts
  std::vector<Block> blocks_;   ///< num_sets * assoc, set-major
  /// Per-set way predictor: way of the last hit/fill in the set. Staleness
  /// is detected through the predicted block's own valid/tag state.
  std::vector<std::uint32_t> way_;
  std::uint32_t stamp_ = 0;
  HitMiss demand_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t fills_ = 0;
};

}  // namespace selcache::memsys
