// Set-associative cache with true-LRU replacement.
//
// The cache is a tag store only — the simulator tracks which blocks are
// resident, not their contents. Lookup (access) and placement (fill) are
// separate operations so the hardware bypassing scheme can interpose between
// a miss and the fill: it previews the would-be victim (victim_for), decides
// fill-vs-bypass, and only then calls fill().
//
// Hot-path engineering: block size is validated power-of-two, so tag and set
// extraction are a shift (plus a mask when the set count is also a power of
// two — true for every shipped configuration). access_with_victim() performs
// lookup, LRU update, and victim preview in ONE pass over the set, so the
// demand path never scans a set twice.
#pragma once

#include <optional>
#include <vector>

#include "memsys/cache_config.h"
#include "support/bitutil.h"
#include "support/stats.h"

namespace selcache::memsys {

/// A block that fell out of the cache during fill().
struct Eviction {
  Addr block_addr = 0;  ///< first byte address of the evicted block
  bool dirty = false;
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Outcome of a combined lookup + victim preview (one set scan).
  struct LookupResult {
    bool hit = false;
    /// On a miss: the block fill(addr) would evict right now, or nullopt if
    /// the set still has a free way. Meaningless on a hit.
    std::optional<Addr> victim;
  };

  /// Look up the block containing `addr`; updates LRU and dirty state on a
  /// hit. Returns true on hit. Does NOT allocate on miss.
  bool access(Addr addr, bool is_write);

  /// Fused access + victim preview: exactly the observable behavior of
  /// access() followed (on a miss) by victim_for(), in a single scan of the
  /// set. This is the demand-path entry point used by the hierarchy.
  LookupResult access_with_victim(Addr addr, bool is_write);

  /// Side-effect-free lookup.
  bool probe(Addr addr) const;

  /// Address of the block that fill(addr) would evict right now, or nullopt
  /// if the set still has an invalid way (no eviction needed).
  std::optional<Addr> victim_for(Addr addr) const;

  /// Insert the block containing `addr` (LRU way replaced). Returns the
  /// eviction that occurred, if any. Must not be called while resident.
  std::optional<Eviction> fill(Addr addr, bool dirty);

  /// Remove the block containing `addr` if resident; returns its dirtiness.
  std::optional<bool> invalidate(Addr addr);

  /// Drop all blocks (statistics are kept).
  void flush();

  const CacheConfig& config() const { return cfg_; }
  const HitMiss& demand_stats() const { return demand_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t fills() const { return fills_; }
  std::uint64_t resident_blocks() const;

  /// Set index of the block containing `addr` (public so tests can check the
  /// shift/mask form against the reference div/mod formula).
  std::uint64_t set_index(Addr addr) const {
    const Addr blk = addr >> block_shift_;
    return sets_pow2_ ? (blk & set_mask_) : (blk % num_sets_);
  }

  void export_stats(StatSet& out) const;

 private:
  struct Block {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< global stamp; larger = more recently used
  };

  Addr tag_of(Addr addr) const { return addr >> block_shift_; }
  Block* set_of(Addr addr) { return &blocks_[set_index(addr) * cfg_.assoc]; }
  const Block* set_of(Addr addr) const {
    return &blocks_[set_index(addr) * cfg_.assoc];
  }
  Block* find(Addr addr);
  const Block* find(Addr addr) const;

  CacheConfig cfg_;
  unsigned block_shift_ = 0;    ///< log2(block_size); block size is pow2
  std::uint64_t num_sets_ = 0;  ///< cached cfg_.num_sets()
  std::uint64_t set_mask_ = 0;  ///< num_sets-1 when sets_pow2_
  bool sets_pow2_ = false;      ///< fall back to modulo for odd set counts
  std::vector<Block> blocks_;   ///< num_sets * assoc, set-major
  std::uint64_t stamp_ = 0;
  HitMiss demand_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t fills_ = 0;
};

}  // namespace selcache::memsys
