// Set-associative cache with true-LRU replacement.
//
// The cache is a tag store only — the simulator tracks which blocks are
// resident, not their contents. Lookup (access) and placement (fill) are
// separate operations so the hardware bypassing scheme can interpose between
// a miss and the fill: it previews the would-be victim (victim_for), decides
// fill-vs-bypass, and only then calls fill().
#pragma once

#include <optional>
#include <vector>

#include "memsys/cache_config.h"
#include "support/stats.h"

namespace selcache::memsys {

/// A block that fell out of the cache during fill().
struct Eviction {
  Addr block_addr = 0;  ///< first byte address of the evicted block
  bool dirty = false;
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Look up the block containing `addr`; updates LRU and dirty state on a
  /// hit. Returns true on hit. Does NOT allocate on miss.
  bool access(Addr addr, bool is_write);

  /// Side-effect-free lookup.
  bool probe(Addr addr) const;

  /// Address of the block that fill(addr) would evict right now, or nullopt
  /// if the set still has an invalid way (no eviction needed).
  std::optional<Addr> victim_for(Addr addr) const;

  /// Insert the block containing `addr` (LRU way replaced). Returns the
  /// eviction that occurred, if any. Must not be called while resident.
  std::optional<Eviction> fill(Addr addr, bool dirty);

  /// Remove the block containing `addr` if resident; returns its dirtiness.
  std::optional<bool> invalidate(Addr addr);

  /// Drop all blocks (statistics are kept).
  void flush();

  const CacheConfig& config() const { return cfg_; }
  const HitMiss& demand_stats() const { return demand_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t fills() const { return fills_; }
  std::uint64_t resident_blocks() const;

  void export_stats(StatSet& out) const;

 private:
  struct Block {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< global stamp; larger = more recently used
  };

  std::uint64_t set_index(Addr addr) const {
    return (addr / cfg_.block_size) % cfg_.num_sets();
  }
  Addr tag_of(Addr addr) const { return addr / cfg_.block_size; }
  Block* find(Addr addr);
  const Block* find(Addr addr) const;

  CacheConfig cfg_;
  std::vector<Block> blocks_;  ///< num_sets * assoc, set-major
  std::uint64_t stamp_ = 0;
  HitMiss demand_;
  std::uint64_t writebacks_ = 0;
  std::uint64_t fills_ = 0;
};

}  // namespace selcache::memsys
