#include "memsys/hierarchy.h"

#include "fault/injector.h"
#include "support/bitutil.h"
#include "trace/recorder.h"

namespace selcache::memsys {

Hierarchy::Hierarchy(HierarchyConfig cfg)
    : cfg_(cfg),
      l1d_(cfg.l1d),
      l1i_(cfg.l1i),
      l2_(cfg.l2),
      dtlb_(cfg.dtlb),
      itlb_(cfg.itlb),
      mem_(cfg.mem) {
  if (cfg_.classify_misses)
    classifier_ = std::make_unique<MissClassifier>(cfg_.l1d.num_blocks(),
                                                   cfg_.l1d.block_size);
}

Cycle Hierarchy::refill_l2(Addr addr, bool is_write) {
  // One scan resolves both the lookup and the would-be victim; the preview
  // stays valid below because nothing between here and the fill touches
  // this L2 set (the aux-service path returns early).
  const Cache::LookupResult lr = l2_.access_with_victim(addr, is_write);
  if (lr.hit) return 0;

  // L2 missed. Let the scheme's L2 auxiliary structure (e.g. 512-entry
  // victim cache) try to service it before paying for memory.
  if (hw_active()) {
    if (auto aux = hw_->service_miss(Level::L2, addr, is_write)) {
      if (aux->promote) {
        if (auto ev = l2_.fill_at(addr, lr.fill_way, aux->dirty || is_write))
          hw_->on_eviction(Level::L2, ev->block_addr, ev->dirty);
      }
      return aux->extra_latency;
    }
  }

  const Cycle mem_lat = mem_.fetch_latency(cfg_.l2.block_size);
  FillDecision d = FillDecision::Fill;
  if (hw_active()) d = hw_->fill_decision(Level::L2, addr, lr.victim);
  if (d == FillDecision::Fill) {
    if (auto ev = l2_.fill_at(addr, lr.fill_way, is_write)) {
      if (hw_active()) hw_->on_eviction(Level::L2, ev->block_addr, ev->dirty);
    }
  } else {
    hw_->on_bypassed(Level::L2, addr, is_write);
  }
  return mem_lat;
}

Cycle Hierarchy::place_l1d(Addr addr, bool is_write,
                           std::optional<Addr> first_victim,
                           std::uint32_t first_way) {
  std::uint32_t width = 1;
  if (hw_active()) width = std::max(1u, hw_->fetch_width(Level::L1D, addr));

  Cycle extra = 0;
  const Addr base = l1d_.block_base_of(addr);
  for (std::uint32_t i = 0; i < width; ++i) {
    const Addr blk = base + static_cast<Addr>(i) * cfg_.l1d.block_size;
    // The demand block (i == 0) is a known miss with a victim previewed by
    // access_with_victim(); only the SLDT-widened extras need a probe.
    if (i > 0 && l1d_.probe(blk)) continue;
    // Extra (SLDT-widened) blocks are brought in only when already resident
    // in L2 — widening the L2->L1 transfer, never generating extra memory
    // traffic, but occupying the L1-L2 path (charged below). Matches the
    // spirit of [9]'s variable-size fetch.
    if (i > 0 && !l2_.probe(blk)) break;
    // The L2->L1 path is twice the memory bus (SimpleScalar default): a
    // widened fetch occupies it for block/(2*bus) extra cycles.
    if (i > 0) extra += cfg_.l1d.block_size / (2 * cfg_.mem.bus_width);

    const std::optional<Addr> victim =
        i == 0 ? first_victim : l1d_.victim_for(blk);
    FillDecision d = FillDecision::Fill;
    if (hw_active()) d = hw_->fill_decision(Level::L1D, blk, victim);
    if (d == FillDecision::Fill) {
      // The demand block reuses the previewed way; extras scanned their own
      // victim just above.
      auto ev = i == 0 ? l1d_.fill_at(blk, first_way, is_write)
                       : l1d_.fill(blk, false);
      if (ev && hw_active())
        hw_->on_eviction(Level::L1D, ev->block_addr, ev->dirty);
    } else if (i == 0) {
      hw_->on_bypassed(Level::L1D, addr, is_write);
    }
  }
  return extra;
}

Cycle Hierarchy::refill_l1i(Addr addr) {
  Cycle lat = cfg_.l2.latency;
  // Instruction path bypasses the data-side hardware scheme.
  if (!l2_.access(addr, false)) {
    lat += mem_.fetch_latency(cfg_.l2.block_size);
    l2_.fill(addr, false);
  }
  l1i_.fill(addr, false);
  return lat;
}

Cycle Hierarchy::miss_l1d(Addr addr, bool is_write,
                          std::optional<Addr> victim,
                          std::uint32_t fill_way) {
  if (hw_active()) hw_->on_access(Level::L1D, addr, is_write, false);

  // L1D miss: auxiliary structure first (victim cache swap / bypass buffer).
  if (hw_active()) {
    if (auto aux = hw_->service_miss(Level::L1D, addr, is_write)) {
      if (aux->promote) {
        if (auto ev = l1d_.fill_at(addr, fill_way, aux->dirty || is_write))
          hw_->on_eviction(Level::L1D, ev->block_addr, ev->dirty);
      }
      return aux->extra_latency;
    }
  }

  // Down to L2 (and memory if needed), then place into L1D.
  Cycle lat = cfg_.l2.latency;
  lat += refill_l2(addr, is_write);
  lat += place_l1d(addr, is_write, victim, fill_way);
  return lat;
}

double Hierarchy::l1_miss_rate() const {
  HitMiss combined = l1d_.demand_stats();
  combined += l1i_.demand_stats();
  return combined.miss_rate();
}

double Hierarchy::l2_miss_rate() const { return l2_.demand_stats().miss_rate(); }

void Hierarchy::export_stats(StatSet& out) const {
  l1d_.export_stats(out);
  l1i_.export_stats(out);
  l2_.export_stats(out);
  dtlb_.export_stats(out);
  itlb_.export_stats(out);
  mem_.export_stats(out);
  if (classifier_ != nullptr) classifier_->export_stats(out, "l1d");
  if (hw_ != nullptr) hw_->export_stats(out);
}

}  // namespace selcache::memsys
