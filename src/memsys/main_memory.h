// Main-memory timing: fixed access latency plus bus-width-limited burst
// transfer, as in Table 1 (100-cycle access, 8-byte bus).
#pragma once

#include <cstdint>

#include "support/check.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::memsys {

struct MemoryConfig {
  Cycle access_latency = 100;   ///< cycles to the first chunk
  std::uint32_t bus_width = 8;  ///< bytes per bus cycle
};

class MainMemory {
 public:
  explicit MainMemory(MemoryConfig cfg) : cfg_(cfg) {
    SELCACHE_CHECK(cfg_.bus_width > 0);
  }

  /// Latency of fetching `bytes` (a cache block): first-chunk latency plus
  /// one bus cycle per additional bus-width chunk.
  Cycle fetch_latency(std::uint32_t bytes) {
    ++reads_;
    const std::uint32_t chunks = (bytes + cfg_.bus_width - 1) / cfg_.bus_width;
    return cfg_.access_latency + (chunks > 0 ? chunks - 1 : 0);
  }

  const MemoryConfig& config() const { return cfg_; }
  std::uint64_t reads() const { return reads_; }

  void export_stats(StatSet& out) const { out.add("mem.reads", reads_); }

 private:
  MemoryConfig cfg_;
  std::uint64_t reads_ = 0;
};

}  // namespace selcache::memsys
