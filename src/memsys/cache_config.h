// Cache geometry and timing parameters.
#pragma once

#include <cstdint>
#include <string>

#include "support/bitutil.h"
#include "support/check.h"
#include "support/types.h"

namespace selcache::memsys {

/// Identifies a cache level in the hierarchy. Used by the hardware
/// optimization hooks to know where they are intervening.
enum class Level { L1D, L1I, L2 };

inline const char* to_string(Level l) {
  switch (l) {
    case Level::L1D: return "L1D";
    case Level::L1I: return "L1I";
    case Level::L2: return "L2";
  }
  return "?";
}

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t assoc = 4;
  std::uint32_t block_size = 32;
  Cycle latency = 2;  ///< access time charged on a hit at this level

  std::uint64_t num_blocks() const { return size_bytes / block_size; }
  std::uint64_t num_sets() const { return num_blocks() / assoc; }

  void validate() const {
    SELCACHE_CHECK_MSG(is_pow2(block_size), name + ": block size not pow2");
    SELCACHE_CHECK_MSG(is_pow2(size_bytes), name + ": size not pow2");
    SELCACHE_CHECK_MSG(assoc > 0, name + ": zero associativity");
    SELCACHE_CHECK_MSG(num_blocks() % assoc == 0,
                       name + ": blocks not divisible by assoc");
    SELCACHE_CHECK_MSG(num_sets() > 0, name + ": no sets");
  }
};

}  // namespace selcache::memsys
