// Translation lookaside buffer.
//
// Modeled as a set-associative cache of page frames. Table 1 of the paper
// lists the TLBs as "512K, 4-way" / "256K, 4-way" — we read those as the
// *reach* (mapped bytes); with 4 KB pages that is 128 data-TLB entries and
// 64 instruction-TLB entries, matching SimpleScalar's defaults.
#pragma once

#include <string>
#include <vector>

#include "support/bitutil.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::memsys {

struct TlbConfig {
  std::string name = "dtlb";
  std::uint32_t entries = 128;
  std::uint32_t assoc = 4;
  std::uint32_t page_size = 4096;
  Cycle miss_penalty = 30;  ///< page-walk cycles charged on a TLB miss
};

class Tlb {
 public:
  explicit Tlb(TlbConfig cfg);

  /// Translate the page containing `addr`; returns the cycles charged
  /// (0 on hit, miss_penalty on miss). The missing translation is filled.
  Cycle access(Addr addr);

  bool probe(Addr addr) const;

  const TlbConfig& config() const { return cfg_; }
  const HitMiss& stats() const { return stats_; }
  void export_stats(StatSet& out) const;

 private:
  struct Entry {
    Addr vpn = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  Addr vpn_of(Addr addr) const {
    return page_pow2_ ? (addr >> page_shift_) : (addr / cfg_.page_size);
  }
  std::uint64_t set_index(Addr vpn) const {
    return sets_pow2_ ? (vpn & set_mask_) : (vpn % num_sets_);
  }

  TlbConfig cfg_;
  std::uint64_t num_sets_;
  unsigned page_shift_ = 0;     ///< log2(page_size) when page_pow2_
  bool page_pow2_ = false;
  std::uint64_t set_mask_ = 0;  ///< num_sets-1 when sets_pow2_
  bool sets_pow2_ = false;
  std::vector<Entry> entries_;
  std::uint64_t stamp_ = 0;
  HitMiss stats_;
};

}  // namespace selcache::memsys
