// Translation lookaside buffer.
//
// Modeled as a set-associative cache of page frames. Table 1 of the paper
// lists the TLBs as "512K, 4-way" / "256K, 4-way" — we read those as the
// *reach* (mapped bytes); with 4 KB pages that is 128 data-TLB entries and
// 64 instruction-TLB entries, matching SimpleScalar's defaults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "memsys/probe_kernels.h"
#include "support/bitutil.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::memsys {

struct TlbConfig {
  std::string name = "dtlb";
  std::uint32_t entries = 128;
  std::uint32_t assoc = 4;
  std::uint32_t page_size = 4096;
  Cycle miss_penalty = 30;  ///< page-walk cycles charged on a TLB miss
};

class Tlb {
 public:
  explicit Tlb(TlbConfig cfg);

  /// Translate the page containing `addr`; returns the cycles charged
  /// (0 on hit, miss_penalty on miss). The missing translation is filled.
  /// Defined inline (with a per-set way predictor) because it runs once per
  /// demand access: page-local streams short-circuit to one compare + LRU
  /// stamp, with exactly the scan path's updates. The prediction is
  /// validated by the entry's own (valid, vpn) state, so refills that
  /// recycle the predicted entry are detected without bookkeeping.
  Cycle access(Addr addr) {
    const Addr vpn = vpn_of(addr);
    const std::uint64_t si = set_index(vpn);
    Entry& pred = entries_[si * cfg_.assoc + way_[si]];
    if (pred.valid && pred.vpn == vpn) {
      pred.lru = bump();
      stats_.record(true);
      return 0;
    }
    return access_scan(si, vpn);
  }

  bool probe(Addr addr) const;

  /// Host-side prefetch of the set `addr` maps to (batched-replay
  /// lookahead); no simulator state or statistics are touched.
  void prefetch_set(Addr addr) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&entries_[set_index(vpn_of(addr)) * cfg_.assoc]);
#endif
  }

  const TlbConfig& config() const { return cfg_; }
  const HitMiss& stats() const { return stats_; }
  void export_stats(StatSet& out) const;

  /// Test-only wrap hooks, mirroring Cache's (see cache.h): force the
  /// stamp counter near the uint32_t boundary and observe entry stamps.
  void debug_set_stamp(std::uint32_t v) { stamp_ = v; }
  std::uint32_t debug_stamp() const { return stamp_; }
  std::optional<std::uint32_t> debug_lru_of(Addr addr) const {
    const Addr vpn = vpn_of(addr);
    const std::uint64_t si = set_index(vpn);
    for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
      const Entry& e = entries_[si * cfg_.assoc + w];
      if (e.valid && e.vpn == vpn) return e.lru;
    }
    return std::nullopt;
  }

 private:
  /// 16 bytes so a 4-way set is one 64-byte line. The 32-bit LRU stamp is
  /// renormalized (order-preserving) before it can wrap.
  struct Entry {
    Addr vpn = 0;
    std::uint32_t lru = 0;
    bool valid = false;
  };
  static_assert(sizeof(Entry) == kernels::kSlotBytes);
  // Same 16-byte slot layout as Cache::Block: the shared probe kernels
  // (memsys/probe_kernels.h) address vpn/lru/valid by raw byte offset.
  static_assert(offsetof(Entry, vpn) == kernels::kSlotKeyOff);
  static_assert(offsetof(Entry, lru) == kernels::kSlotLruOff);
  static_assert(offsetof(Entry, valid) == kernels::kSlotValidOff);

  std::uint32_t bump() {
    if (stamp_ == std::numeric_limits<std::uint32_t>::max()) renormalize();
    return ++stamp_;
  }
  void renormalize();

  Addr vpn_of(Addr addr) const {
    return page_pow2_ ? (addr >> page_shift_) : (addr / cfg_.page_size);
  }
  std::uint64_t set_index(Addr vpn) const {
    return sets_pow2_ ? (vpn & set_mask_) : (vpn % num_sets_);
  }

  /// Slow path of access() (prediction missed): set scan + refill on miss.
  Cycle access_scan(std::uint64_t si, Addr vpn);

  TlbConfig cfg_;
  std::uint64_t num_sets_;
  unsigned page_shift_ = 0;     ///< log2(page_size) when page_pow2_
  bool page_pow2_ = false;
  std::uint64_t set_mask_ = 0;  ///< num_sets-1 when sets_pow2_
  bool sets_pow2_ = false;
  std::vector<Entry> entries_;
  /// Per-set way predictor: way of the last hit/refill in the set.
  std::vector<std::uint32_t> way_;
  std::uint32_t stamp_ = 0;
  HitMiss stats_;
};

}  // namespace selcache::memsys
