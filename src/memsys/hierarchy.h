// Two-level memory hierarchy with TLBs, an optional hardware locality
// scheme, and optional three-C miss classification.
//
// Topology (Table 1 of the paper):
//
//            +-------+   +-------+
//   ifetch ->| ITLB  |-->|  L1I  |---+
//            +-------+   +-------+   |    +------+     +--------+
//                                    +--->|  L2  |---->| Memory |
//            +-------+   +-------+   |    +------+     +--------+
//   ld/st -->| DTLB  |-->|  L1D  |---+
//            +-------+   +-------+
//
// The attached HwScheme interposes on the L1D/L2 data path only (the paper's
// mechanisms target the data cache). The hierarchy is non-inclusive, write-
// back, write-allocate — matching SimpleScalar's cache module.
#pragma once

#include <memory>

#include "fault/injector.h"
#include "memsys/cache.h"
#include "support/run_guard.h"
#include "memsys/hw_hooks.h"
#include "memsys/main_memory.h"
#include "memsys/miss_classifier.h"
#include "memsys/tlb.h"
#include "trace/recorder.h"

namespace selcache::memsys {

enum class AccessKind { Load, Store, IFetch };

/// Per-access observer of the L1D data path (loads/stores only), invoked
/// after the tag check with the demand address and hit/miss outcome. Used by
/// the static-locality measurement harness to attribute misses to data
/// entities. Attached nullptr-gated like the trace recorder and fault
/// injector: an unprobed run executes the pre-probe code path bit-for-bit.
class DataAccessProbe {
 public:
  virtual ~DataAccessProbe() = default;
  virtual void on_l1d_access(Addr addr, bool is_write, bool hit) = 0;
};

struct HierarchyConfig {
  CacheConfig l1d{.name = "l1d",
                  .size_bytes = 32 * 1024,
                  .assoc = 4,
                  .block_size = 32,
                  .latency = 2};
  CacheConfig l1i{.name = "l1i",
                  .size_bytes = 32 * 1024,
                  .assoc = 4,
                  .block_size = 32,
                  .latency = 2};
  CacheConfig l2{.name = "l2",
                 .size_bytes = 512 * 1024,
                 .assoc = 4,
                 .block_size = 128,
                 .latency = 10};
  TlbConfig dtlb{.name = "dtlb", .entries = 128, .assoc = 4};
  TlbConfig itlb{.name = "itlb", .entries = 64, .assoc = 4};
  MemoryConfig mem{};
  bool classify_misses = false;  ///< maintain the 3C shadow for L1D
};

class Hierarchy {
 public:
  explicit Hierarchy(HierarchyConfig cfg);

  /// Attach (non-owning) a hardware scheme; pass nullptr to detach.
  void attach_hw(HwScheme* hw) { hw_ = hw; }
  HwScheme* hw() const { return hw_; }

  /// Attach (non-owning) a phase-trace recorder; nullptr detaches. The
  /// hierarchy drives the recorder's epoch clock: one tick per completed
  /// demand access (data and instruction side alike).
  void set_trace(trace::Recorder* rec) { trace_ = rec; }

  /// Attach (non-owning) a fault injector; nullptr detaches. The hierarchy
  /// gives it one callback per demand access — the watchdog / task-crash
  /// clock of the fault model.
  void set_fault(fault::Injector* inj) { fault_ = inj; }

  /// Attach (non-owning) an L1D access probe; nullptr detaches.
  void set_probe(DataAccessProbe* p) { probe_ = p; }

  /// Attach (non-owning) a run-supervision guard; nullptr detaches. The
  /// guard is polled once per demand access, before any state changes, and
  /// may throw support::RunSuspended / support::CellDeadlineExceeded —
  /// unlike the fault injector it exports no stats, so attaching it leaves
  /// the simulation's results bit-identical.
  void set_run_guard(support::RunGuard* g) { guard_ = g; }

  /// Perform one demand access; returns the total latency in cycles. With
  /// a fault injector attached this may throw fault::WatchdogExceeded or
  /// fault::InjectedCrash — all simulator state is task-local, so the
  /// exception unwinds cleanly to the resilient runner. Defined inline —
  /// together with the inline Cache/Tlb hit paths this collapses the whole
  /// hit-case access into one call frame, which is what the trace-tape
  /// replay loop's throughput rides on.
  Cycle access(Addr addr, AccessKind kind) {
    // Watchdog / crash clock before any state changes: a killed access
    // never half-updates the hierarchy. Same rule for the run guard — a
    // suspended cell leaves the hierarchy exactly as the last completed
    // access did.
    if (fault_ != nullptr) fault_->on_access();
    if (guard_ != nullptr) guard_->poll();
    const Cycle lat = access_impl(addr, kind);
    // Epoch clock ticks after the access fully updated its counters, so an
    // epoch boundary at access N covers exactly accesses [.., N).
    if (trace_ != nullptr) trace_->note_access();
    return lat;
  }

  /// Host-side prefetch of the L1D and DTLB sets a future data access will
  /// probe — the batched-replay lookahead hint. Pure performance: no
  /// simulator state, statistics, or attached hooks are touched.
  void prefetch_data(Addr addr) const {
    dtlb_.prefetch_set(addr);
    l1d_.prefetch_set(addr);
  }

  const Cache& l1d() const { return l1d_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l2() const { return l2_; }
  const Tlb& dtlb() const { return dtlb_; }
  const Tlb& itlb() const { return itlb_; }
  const MainMemory& memory() const { return mem_; }
  const MissClassifier* classifier() const { return classifier_.get(); }
  const HierarchyConfig& config() const { return cfg_; }

  /// Combined L1 (data + instruction) miss rate, as reported in Table 2.
  double l1_miss_rate() const;
  /// L2 miss rate (local: misses / L2 accesses).
  double l2_miss_rate() const;

  void export_stats(StatSet& out) const;

 private:
  bool hw_active() const { return hw_ != nullptr && hw_->active(); }

  /// The access path proper; access() wraps it so the epoch tick fires
  /// after the access's counter updates are complete (single return site).
  /// Inline for the hit cases; misses leave through the out-of-line
  /// refill/place helpers.
  Cycle access_impl(Addr addr, AccessKind kind) {
    if (kind == AccessKind::IFetch) {
      Cycle lat = itlb_.access(addr);
      lat += cfg_.l1i.latency;
      if (l1i_.access(addr, /*is_write=*/false)) return lat;
      return lat + refill_l1i(addr);
    }

    const bool is_write = (kind == AccessKind::Store);
    Cycle lat = dtlb_.access(addr);
    lat += cfg_.l1d.latency;
    // One scan of the L1D set: lookup, LRU update, and victim preview. The
    // preview feeds place_l1d(); it stays valid because the only code that
    // could touch this set before the fill (aux service) returns early.
    const Cache::LookupResult lr = l1d_.access_with_victim(addr, is_write);
    if (probe_ != nullptr) probe_->on_l1d_access(addr, is_write, lr.hit);

    if (classifier_ != nullptr) {
      if (!lr.hit) classifier_->classify_miss(addr);
      classifier_->note_access(addr);
    }

    if (lr.hit) {
      if (hw_active()) hw_->on_access(Level::L1D, addr, is_write, true);
      return lat;
    }
    return lat + miss_l1d(addr, is_write, lr.victim, lr.fill_way);
  }

  /// L1I refill path (out of line: misses are rare).
  Cycle refill_l1i(Addr addr);

  /// L1D miss path beyond the TLB + L1 tag check (out of line). `fill_way`
  /// is the victim way previewed by the miss-detecting scan.
  Cycle miss_l1d(Addr addr, bool is_write, std::optional<Addr> victim,
                 std::uint32_t fill_way);

  /// Fetch the block containing `addr` into L2 (if absent), returning the
  /// added latency beyond the L2 tag check.
  Cycle refill_l2(Addr addr, bool is_write);

  /// Place the block containing `addr` into L1D, honoring the scheme's
  /// fill/bypass decision and SLDT fetch width. `first_victim` is the
  /// demand block's victim previewed by the miss-detecting scan (so the
  /// set is not scanned again); `first_way` is the way it occupies. Returns
  /// the extra cycles spent transferring SLDT-widened fetches over the
  /// L1-L2 path.
  Cycle place_l1d(Addr addr, bool is_write, std::optional<Addr> first_victim,
                  std::uint32_t first_way);

  HierarchyConfig cfg_;
  Cache l1d_, l1i_, l2_;
  Tlb dtlb_, itlb_;
  MainMemory mem_;
  HwScheme* hw_ = nullptr;
  trace::Recorder* trace_ = nullptr;
  fault::Injector* fault_ = nullptr;
  DataAccessProbe* probe_ = nullptr;
  support::RunGuard* guard_ = nullptr;
  std::unique_ptr<MissClassifier> classifier_;
};

}  // namespace selcache::memsys
