#include "memsys/main_memory.h"

// Header-only today; TU anchors the target.
namespace selcache::memsys {}
