#include "memsys/column_assoc.h"

#include "support/bitutil.h"
#include "support/check.h"

namespace selcache::memsys {

ColumnAssociativeCache::ColumnAssociativeCache(std::string name,
                                               std::uint64_t size_bytes,
                                               std::uint32_t block_size,
                                               Cycle latency)
    : name_(std::move(name)), block_size_(block_size), latency_(latency) {
  SELCACHE_CHECK(is_pow2(size_bytes));
  SELCACHE_CHECK(is_pow2(block_size));
  num_sets_ = size_bytes / block_size;
  SELCACHE_CHECK_MSG(num_sets_ >= 2, name_ + ": needs at least two sets");
  slots_.resize(num_sets_);
}

ColumnAssociativeCache::AccessResult ColumnAssociativeCache::access(
    Addr addr, bool is_write) {
  const Addr frame = addr / block_size_;
  const std::uint64_t primary = index_of(addr);
  const std::uint64_t alternate = flip(primary);

  Slot& p = slots_[primary];
  if (p.valid && p.tag == frame) {
    ++first_hits_;
    p.dirty = p.dirty || is_write;
    return {true, false, latency_};
  }

  Slot& a = slots_[alternate];
  if (a.valid && a.tag == frame) {
    ++second_hits_;
    a.dirty = a.dirty || is_write;
    // Swap toward the primary slot so the next access hits first-probe.
    std::swap(p, a);
    p.rehashed = false;
    a.rehashed = true;
    ++swaps_;
    return {true, true, latency_ + 1};
  }

  // Miss. Replacement follows [1]: if the primary slot holds a rehashed
  // block (it is some other set's overflow), evict it outright; otherwise
  // displace the primary occupant into the alternate slot (rehash) and
  // place the new block in the primary position.
  ++misses_;
  if (!p.valid || p.rehashed) {
    p = Slot{frame, true, false, is_write};
  } else {
    a = p;
    a.rehashed = true;
    p = Slot{frame, true, false, is_write};
  }
  return {false, false, latency_};
}

bool ColumnAssociativeCache::probe(Addr addr) const {
  const Addr frame = addr / block_size_;
  const Slot& p = slots_[index_of(addr)];
  if (p.valid && p.tag == frame) return true;
  const Slot& a = slots_[flip(index_of(addr))];
  return a.valid && a.tag == frame;
}

void ColumnAssociativeCache::export_stats(StatSet& out) const {
  out.add(name_ + ".first_probe_hits", first_hits_);
  out.add(name_ + ".second_probe_hits", second_hits_);
  out.add(name_ + ".misses", misses_);
  out.add(name_ + ".swaps", swaps_);
}

}  // namespace selcache::memsys
