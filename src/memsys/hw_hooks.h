// Interface between the memory hierarchy and a hardware locality-optimization
// scheme (cache bypassing via MAT/SLDT, or victim caching).
//
// The hierarchy is mechanism-agnostic: at well-defined points of the access
// path it consults the attached scheme. The scheme carries the run-time
// ACTIVE flag that the paper's activate/deactivate (ON/OFF) instructions
// toggle; when inactive the hierarchy ignores the mechanism entirely (§4.1:
// "when the hardware optimization is turned off, we simply ignore the
// mechanism"), which is exactly what lets stale state survive across
// software-optimized regions.
#pragma once

#include <optional>
#include <string_view>

#include "memsys/cache_config.h"
#include "support/stats.h"

namespace selcache::trace {
class Recorder;
}

namespace selcache::fault {
class Injector;
}

namespace selcache::memsys {

/// What to do with a block that is about to be placed in a cache.
enum class FillDecision { Fill, Bypass };

class HwScheme {
 public:
  virtual ~HwScheme() = default;

  virtual std::string_view name() const = 0;

  /// Run-time toggle driven by ON/OFF instructions.
  void set_active(bool a) { active_ = a; }
  bool active() const { return active_; }

  /// Attach (non-owning) a phase-trace recorder; nullptr detaches. Schemes
  /// with sub-components (MAT, nested schemes) propagate the pointer. The
  /// default ignores tracing — a scheme only overrides this if it has
  /// discrete events worth reporting.
  virtual void set_trace(trace::Recorder* rec) { (void)rec; }

  /// Attach (non-owning) a fault injector; nullptr detaches. Schemes
  /// propagate the pointer to the state the fault model covers (MAT/SLDT
  /// counters, bypass buffer, victim caches). The default ignores it — a
  /// scheme with no fault-injectable state pays nothing.
  virtual void set_fault(fault::Injector* inj) { (void)inj; }

  /// Verify the scheme's internal invariants (controller integrity checks;
  /// see DegradePolicy). Must be cheap relative to the check interval.
  /// Default: nothing to check, always healthy.
  virtual bool check_integrity() const { return true; }

  /// Observe a demand access at `level` (called only while active).
  virtual void on_access(Level level, Addr addr, bool is_write, bool hit) = 0;

  /// Result of servicing a miss from an auxiliary structure.
  struct AuxHit {
    Cycle extra_latency = 1;  ///< cycles beyond the level's hit latency
    bool promote = false;     ///< move the block into the main cache (swap)
    bool dirty = false;       ///< dirtiness carried by the promoted block
  };

  /// The main cache at `level` missed; may the auxiliary structure (victim
  /// cache / bypass buffer) service it? nullopt = no, go to the next level.
  virtual std::optional<AuxHit> service_miss(Level level, Addr addr,
                                             bool is_write) = 0;

  /// A fetched block is about to be placed at `level`. `victim` is the block
  /// the fill would evict (nullopt when a free way exists).
  virtual FillDecision fill_decision(Level level, Addr addr,
                                     std::optional<Addr> victim) = 0;

  /// The hierarchy honored a Bypass decision: the scheme takes custody of
  /// the accessed word.
  virtual void on_bypassed(Level level, Addr addr, bool is_write) = 0;

  /// A fill at `level` pushed `block_addr` out of the cache.
  virtual void on_eviction(Level level, Addr block_addr, bool dirty) = 0;

  /// How many consecutive blocks to bring in on an L2->L1 fill (SLDT
  /// variable-size fetching); must return >= 1.
  virtual std::uint32_t fetch_width(Level level, Addr addr) = 0;

  virtual void export_stats(StatSet& out) const = 0;

 private:
  bool active_ = false;
};

}  // namespace selcache::memsys
