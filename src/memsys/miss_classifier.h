// Conflict- vs. capacity- vs. compulsory-miss classification.
//
// A miss is *compulsory* if the block was never referenced before,
// *capacity* if a fully-associative LRU cache of the same total capacity
// would also have missed, and *conflict* otherwise (the classic
// three-C model with the fully-associative shadow as the capacity oracle).
// §4.2 of the paper reports that conflict misses are 53–72% of all misses in
// its suite; bench_table2 reproduces that column with this classifier.
#pragma once

#include <list>
#include <unordered_map>
#include <unordered_set>

#include "memsys/cache_config.h"
#include "support/stats.h"

namespace selcache::memsys {

enum class MissKind { Compulsory, Capacity, Conflict };

class MissClassifier {
 public:
  /// `capacity_blocks`: number of blocks the shadowed cache holds.
  MissClassifier(std::uint64_t capacity_blocks, std::uint32_t block_size);

  /// Observe every demand access (hits included — the shadow LRU stack needs
  /// full recency information).
  void note_access(Addr addr);

  /// Classify a miss that the real cache just took. Must be called BEFORE
  /// note_access for the same reference.
  MissKind classify_miss(Addr addr);

  std::uint64_t compulsory() const { return compulsory_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t conflict() const { return conflict_; }
  std::uint64_t total() const { return compulsory_ + capacity_ + conflict_; }

  /// Fraction of classified misses that are conflict misses, in [0,1].
  double conflict_share() const {
    return total() == 0 ? 0.0
                        : static_cast<double>(conflict_) /
                              static_cast<double>(total());
  }

  void export_stats(StatSet& out, const std::string& prefix) const;

 private:
  Addr frame(Addr addr) const { return addr / block_size_; }

  std::uint64_t capacity_blocks_;
  std::uint32_t block_size_;
  /// Fully-associative LRU shadow: front = MRU.
  std::list<Addr> lru_;
  std::unordered_map<Addr, std::list<Addr>::iterator> index_;
  std::unordered_set<Addr> ever_seen_;
  std::uint64_t compulsory_ = 0, capacity_ = 0, conflict_ = 0;
};

}  // namespace selcache::memsys
