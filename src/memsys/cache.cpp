#include "memsys/cache.h"

#include <algorithm>

namespace selcache::memsys {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  block_shift_ = log2_exact(cfg_.block_size);
  num_sets_ = cfg_.num_sets();
  sets_pow2_ = is_pow2(num_sets_);
  set_mask_ = sets_pow2_ ? num_sets_ - 1 : 0;
  blocks_.resize(cfg_.num_blocks());
  way_.resize(num_sets_, 0);
}

bool Cache::access_scan(std::uint64_t si, Addr tag, bool is_write) {
  Block* set = &blocks_[si * cfg_.assoc];
  const std::uint32_t w = kernels::match_way(set, cfg_.assoc, tag);
  if (w != kernels::kNoWay) {
    touch_hit(set[w], is_write);
    way_[si] = w;
    return true;
  }
  demand_.record(false);
  return false;
}

Cache::LookupResult Cache::access_with_victim_scan(std::uint64_t si, Addr tag,
                                                   bool is_write) {
  Block* set = &blocks_[si * cfg_.assoc];
  const kernels::ProbeResult pr = kernels::probe_way(set, cfg_.assoc, tag);
  if (pr.hit) {
    touch_hit(set[pr.way], is_write);
    way_[si] = pr.way;
    return {.hit = true, .victim = std::nullopt};
  }
  demand_.record(false);
  LookupResult r;
  r.fill_way = pr.way;
  if (!pr.free) {
    // Same victim fill() would pick: the LRU way of a full set.
    r.victim = static_cast<Addr>(set[pr.way].tag) << block_shift_;
  }
  return r;
}

std::optional<Addr> Cache::victim_for(Addr addr) const {
  const Block* set = set_of(addr);
  const kernels::VictimWay v = kernels::victim_way(set, cfg_.assoc);
  if (v.free) return std::nullopt;  // free way, no eviction
  return static_cast<Addr>(set[v.way].tag) << block_shift_;
}

std::optional<Eviction> Cache::fill(Addr addr, bool dirty) {
  const Addr tag = tag_of(addr);
  const std::uint64_t si = set_index(addr);
  Block* set = &blocks_[si * cfg_.assoc];
  Block* victim = nullptr;
  bool free_way = false;
  // One scan: residency check (fill of a resident block is a caller bug)
  // fused with free-way/LRU victim selection.
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    Block& b = set[w];
    SELCACHE_CHECK_MSG(!b.valid || b.tag != tag,
                       cfg_.name + ": fill of resident block");
    if (!b.valid) {
      if (!free_way) victim = &b;
      free_way = true;
    } else if (!free_way && (victim == nullptr || b.lru < victim->lru)) {
      victim = &b;
    }
  }
  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{static_cast<Addr>(victim->tag) << block_shift_,
                       victim->dirty};
    if (victim->dirty) ++writebacks_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = dirty;
  victim->lru = bump();
  ++fills_;
  // The freshly filled way is the likeliest next hit in this set.
  way_[si] = static_cast<std::uint32_t>(victim - set);
  return evicted;
}

std::optional<Eviction> Cache::fill_at(Addr addr, std::uint32_t way,
                                       bool dirty) {
  SELCACHE_CHECK(way < cfg_.assoc);
  const std::uint64_t si = set_index(addr);
  Block& victim = blocks_[si * cfg_.assoc + way];
  std::optional<Eviction> evicted;
  if (victim.valid) {
    evicted = Eviction{static_cast<Addr>(victim.tag) << block_shift_,
                       victim.dirty};
    if (victim.dirty) ++writebacks_;
  }
  victim.valid = true;
  victim.tag = tag_of(addr);
  victim.dirty = dirty;
  victim.lru = bump();
  ++fills_;
  way_[si] = way;
  return evicted;
}

void Cache::renormalize() {
  // Rank every block by its current stamp; ranks 1..n preserve the exact
  // recency order with the counter reset far away from the wrap point.
  std::vector<Block*> order;
  order.reserve(blocks_.size());
  for (Block& b : blocks_) order.push_back(&b);
  std::sort(order.begin(), order.end(),
            [](const Block* a, const Block* b) { return a->lru < b->lru; });
  std::uint32_t next = 0;
  for (Block* b : order) b->lru = ++next;
  stamp_ = next;
}

std::optional<bool> Cache::invalidate(Addr addr) {
  Block* b = find(addr);
  if (b == nullptr) return std::nullopt;
  b->valid = false;
  return b->dirty;
}

void Cache::flush() {
  for (Block& b : blocks_) b.valid = false;
}

std::uint64_t Cache::resident_blocks() const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_)
    if (b.valid) ++n;
  return n;
}

void Cache::export_stats(StatSet& out) const {
  out.add(cfg_.name + ".hits", demand_.hits);
  out.add(cfg_.name + ".misses", demand_.misses);
  out.add(cfg_.name + ".writebacks", writebacks_);
  out.add(cfg_.name + ".fills", fills_);
}

}  // namespace selcache::memsys
