#include "memsys/cache.h"

namespace selcache::memsys {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  block_shift_ = log2_exact(cfg_.block_size);
  num_sets_ = cfg_.num_sets();
  sets_pow2_ = is_pow2(num_sets_);
  set_mask_ = sets_pow2_ ? num_sets_ - 1 : 0;
  blocks_.resize(cfg_.num_blocks());
}

Cache::Block* Cache::find(Addr addr) {
  const Addr tag = tag_of(addr);
  Block* set = set_of(addr);
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
    if (set[w].valid && set[w].tag == tag) return &set[w];
  return nullptr;
}

const Cache::Block* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::access(Addr addr, bool is_write) {
  Block* b = find(addr);
  if (b != nullptr) {
    b->lru = ++stamp_;
    b->dirty = b->dirty || is_write;
    demand_.record(true);
    return true;
  }
  demand_.record(false);
  return false;
}

Cache::LookupResult Cache::access_with_victim(Addr addr, bool is_write) {
  const Addr tag = tag_of(addr);
  Block* set = set_of(addr);
  Block* lru = nullptr;
  bool free_way = false;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    Block& b = set[w];
    if (b.valid && b.tag == tag) {
      b.lru = ++stamp_;
      b.dirty = b.dirty || is_write;
      demand_.record(true);
      return {.hit = true, .victim = std::nullopt};
    }
    if (!b.valid) {
      free_way = true;
    } else if (lru == nullptr || b.lru < lru->lru) {
      lru = &b;
    }
  }
  demand_.record(false);
  LookupResult r;
  if (!free_way && lru != nullptr)
    r.victim = static_cast<Addr>(lru->tag) << block_shift_;
  return r;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

std::optional<Addr> Cache::victim_for(Addr addr) const {
  const Block* set = set_of(addr);
  const Block* lru = nullptr;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (!set[w].valid) return std::nullopt;  // free way, no eviction
    if (lru == nullptr || set[w].lru < lru->lru) lru = &set[w];
  }
  return static_cast<Addr>(lru->tag) << block_shift_;
}

std::optional<Eviction> Cache::fill(Addr addr, bool dirty) {
  const Addr tag = tag_of(addr);
  Block* set = set_of(addr);
  Block* victim = nullptr;
  bool free_way = false;
  // One scan: residency check (fill of a resident block is a caller bug)
  // fused with free-way/LRU victim selection.
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    Block& b = set[w];
    SELCACHE_CHECK_MSG(!b.valid || b.tag != tag,
                       cfg_.name + ": fill of resident block");
    if (!b.valid) {
      if (!free_way) victim = &b;
      free_way = true;
    } else if (!free_way && (victim == nullptr || b.lru < victim->lru)) {
      victim = &b;
    }
  }
  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{static_cast<Addr>(victim->tag) << block_shift_,
                       victim->dirty};
    if (victim->dirty) ++writebacks_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = dirty;
  victim->lru = ++stamp_;
  ++fills_;
  return evicted;
}

std::optional<bool> Cache::invalidate(Addr addr) {
  Block* b = find(addr);
  if (b == nullptr) return std::nullopt;
  b->valid = false;
  return b->dirty;
}

void Cache::flush() {
  for (Block& b : blocks_) b.valid = false;
}

std::uint64_t Cache::resident_blocks() const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_)
    if (b.valid) ++n;
  return n;
}

void Cache::export_stats(StatSet& out) const {
  out.add(cfg_.name + ".hits", demand_.hits);
  out.add(cfg_.name + ".misses", demand_.misses);
  out.add(cfg_.name + ".writebacks", writebacks_);
  out.add(cfg_.name + ".fills", fills_);
}

}  // namespace selcache::memsys
