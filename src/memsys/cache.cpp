#include "memsys/cache.h"

namespace selcache::memsys {

Cache::Cache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  blocks_.resize(cfg_.num_blocks());
}

Cache::Block* Cache::find(Addr addr) {
  const Addr tag = tag_of(addr);
  Block* set = &blocks_[set_index(addr) * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w)
    if (set[w].valid && set[w].tag == tag) return &set[w];
  return nullptr;
}

const Cache::Block* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::access(Addr addr, bool is_write) {
  Block* b = find(addr);
  if (b != nullptr) {
    b->lru = ++stamp_;
    b->dirty = b->dirty || is_write;
    demand_.record(true);
    return true;
  }
  demand_.record(false);
  return false;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

std::optional<Addr> Cache::victim_for(Addr addr) const {
  const Block* set = &blocks_[set_index(addr) * cfg_.assoc];
  const Block* lru = nullptr;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (!set[w].valid) return std::nullopt;  // free way, no eviction
    if (lru == nullptr || set[w].lru < lru->lru) lru = &set[w];
  }
  return lru->tag * cfg_.block_size;
}

std::optional<Eviction> Cache::fill(Addr addr, bool dirty) {
  SELCACHE_CHECK_MSG(find(addr) == nullptr,
                     cfg_.name + ": fill of resident block");
  Block* set = &blocks_[set_index(addr) * cfg_.assoc];
  Block* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    if (victim == nullptr || set[w].lru < victim->lru) victim = &set[w];
  }
  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{victim->tag * cfg_.block_size, victim->dirty};
    if (victim->dirty) ++writebacks_;
  }
  victim->valid = true;
  victim->tag = tag_of(addr);
  victim->dirty = dirty;
  victim->lru = ++stamp_;
  ++fills_;
  return evicted;
}

std::optional<bool> Cache::invalidate(Addr addr) {
  Block* b = find(addr);
  if (b == nullptr) return std::nullopt;
  b->valid = false;
  return b->dirty;
}

void Cache::flush() {
  for (Block& b : blocks_) b.valid = false;
}

std::uint64_t Cache::resident_blocks() const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_)
    if (b.valid) ++n;
  return n;
}

void Cache::export_stats(StatSet& out) const {
  out.add(cfg_.name + ".hits", demand_.hits);
  out.add(cfg_.name + ".misses", demand_.misses);
  out.add(cfg_.name + ".writebacks", writebacks_);
  out.add(cfg_.name + ".fills", fills_);
}

}  // namespace selcache::memsys
