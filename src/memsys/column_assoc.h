// Column-associative cache (Agarwal & Pudar, ISCA 1993) — the paper's
// reference [1], one of the "novel cache architectures" §1.1 surveys.
//
// A direct-mapped array where a miss in the primary set retries the
// alternate set (index with the top index bit flipped). A hit in the
// alternate location costs one extra cycle and swaps the block into the
// primary slot; a rehash bit steers replacement so that rehashed blocks are
// preferred victims. Gets most of 2-way associativity's miss reduction at
// direct-mapped access time.
//
// Provided as a substrate extension (standalone, with tests and a
// microbench); the paper's evaluation itself uses conventional
// set-associative caches.
#pragma once

#include <vector>

#include "memsys/cache_config.h"
#include "support/stats.h"

namespace selcache::memsys {

class ColumnAssociativeCache {
 public:
  /// `size_bytes` / `block_size` as usual; the cache behaves as
  /// direct-mapped with one alternate location per block.
  ColumnAssociativeCache(std::string name, std::uint64_t size_bytes,
                         std::uint32_t block_size, Cycle latency = 1);

  struct AccessResult {
    bool hit = false;
    bool second_probe = false;  ///< hit came from the alternate location
    Cycle latency = 0;          ///< base latency (+1 on a second-probe hit)
  };

  /// Look up and, on a miss, fill (self-contained — the rehash/swap
  /// mechanics make split probe/fill awkward and nothing interposes here).
  AccessResult access(Addr addr, bool is_write);

  bool probe(Addr addr) const;

  std::uint64_t first_probe_hits() const { return first_hits_; }
  std::uint64_t second_probe_hits() const { return second_hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    const auto total = first_hits_ + second_hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
  }
  std::uint64_t swaps() const { return swaps_; }
  void export_stats(StatSet& out) const;

 private:
  struct Slot {
    Addr tag = 0;       ///< full block frame number
    bool valid = false;
    bool rehashed = false;  ///< lives in its alternate (flipped) set
    bool dirty = false;
  };

  std::uint64_t index_of(Addr addr) const {
    return (addr / block_size_) % num_sets_;
  }
  std::uint64_t flip(std::uint64_t idx) const { return idx ^ (num_sets_ / 2); }

  std::string name_;
  std::uint32_t block_size_;
  std::uint64_t num_sets_;
  std::vector<Slot> slots_;
  Cycle latency_;
  std::uint64_t first_hits_ = 0, second_hits_ = 0, misses_ = 0, swaps_ = 0;
};

}  // namespace selcache::memsys
