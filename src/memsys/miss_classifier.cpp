#include "memsys/miss_classifier.h"

#include "support/check.h"

namespace selcache::memsys {

MissClassifier::MissClassifier(std::uint64_t capacity_blocks,
                               std::uint32_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  SELCACHE_CHECK(capacity_blocks_ > 0);
  SELCACHE_CHECK(block_size_ > 0);
}

void MissClassifier::note_access(Addr addr) {
  const Addr f = frame(addr);
  if (auto it = index_.find(f); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() == capacity_blocks_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(f);
  index_[f] = lru_.begin();
  ever_seen_.insert(f);
}

MissKind MissClassifier::classify_miss(Addr addr) {
  const Addr f = frame(addr);
  if (ever_seen_.find(f) == ever_seen_.end()) {
    ++compulsory_;
    return MissKind::Compulsory;
  }
  // Block was seen before. If the fully-associative shadow also evicted it,
  // even perfect placement could not have kept it: capacity miss.
  if (index_.find(f) == index_.end()) {
    ++capacity_;
    return MissKind::Capacity;
  }
  ++conflict_;
  return MissKind::Conflict;
}

void MissClassifier::export_stats(StatSet& out,
                                  const std::string& prefix) const {
  out.add(prefix + ".miss.compulsory", compulsory_);
  out.add(prefix + ".miss.capacity", capacity_);
  out.add(prefix + ".miss.conflict", conflict_);
}

}  // namespace selcache::memsys
