// Fully-associative victim cache (Jouppi, ISCA 1990).
//
// Sits next to a main cache; receives the blocks that cache evicts and
// services misses that hit among recent victims, converting conflict misses
// into short-latency hits. The paper uses a 64-entry victim cache at L1 and
// a 512-entry one at L2 (§4.1) as one of its two hardware schemes.
#pragma once

#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "fault/injector.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::memsys {

class VictimCache {
 public:
  VictimCache(std::string name, std::uint32_t entries,
              std::uint32_t block_size);

  /// Insert an evicted block; LRU entry falls out if full. Returns the
  /// displaced block (address, dirty) if a dirty block was pushed out and
  /// must be written back.
  struct Displaced {
    Addr block_addr;
    bool dirty;
  };
  std::optional<Displaced> insert(Addr block_addr, bool dirty);

  /// Probe for the block containing `addr`; on hit the entry is REMOVED
  /// (the block is being promoted back into the main cache — the classic
  /// victim-cache swap). Returns its dirtiness on hit.
  std::optional<bool> extract(Addr addr);

  /// Side-effect-free lookup.
  bool probe(Addr addr) const;

  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(lru_.size());
  }
  std::uint32_t capacity() const { return entries_; }
  const HitMiss& stats() const { return probes_; }
  std::uint64_t invalidated() const { return invalidated_; }
  void export_stats(StatSet& out) const;

  /// Attach (non-owning) a fault injector firing at `site`; each insert
  /// becomes an opportunity to silently lose the LRU victim (no writeback).
  /// nullptr detaches.
  void set_fault(fault::Injector* inj, fault::BufferSite site) {
    fault_ = inj;
    fault_site_ = site;
  }

  /// Invariant sweep for the controller's integrity checks: LRU list and
  /// index agree and occupancy is within capacity.
  bool check_integrity() const {
    return lru_.size() == index_.size() && lru_.size() <= entries_;
  }

 private:
  Addr frame(Addr addr) const { return addr / block_size_; }

  std::string name_;
  std::uint32_t entries_;
  std::uint32_t block_size_;
  /// LRU order: front = most recent. Entries are block frame numbers.
  std::list<std::pair<Addr, bool>> lru_;
  std::unordered_map<Addr, std::list<std::pair<Addr, bool>>::iterator> index_;
  fault::Injector* fault_ = nullptr;
  fault::BufferSite fault_site_ = fault::BufferSite::L1Victim;
  HitMiss probes_;
  std::uint64_t invalidated_ = 0;
};

}  // namespace selcache::memsys
