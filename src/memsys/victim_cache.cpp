#include "memsys/victim_cache.h"

#include "support/check.h"

namespace selcache::memsys {

VictimCache::VictimCache(std::string name, std::uint32_t entries,
                         std::uint32_t block_size)
    : name_(std::move(name)), entries_(entries), block_size_(block_size) {
  SELCACHE_CHECK(entries_ > 0);
  SELCACHE_CHECK(block_size_ > 0);
}

std::optional<VictimCache::Displaced> VictimCache::insert(Addr block_addr,
                                                          bool dirty) {
  if (fault_ != nullptr && !lru_.empty() &&
      fault_->should_invalidate(fault_site_)) {
    // Silent loss: the LRU victim vanishes without a writeback.
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++invalidated_;
  }
  const Addr f = frame(block_addr);
  if (auto it = index_.find(f); it != index_.end()) {
    // Already present (can happen when a block bounces between main cache
    // and victim cache): refresh recency and dirtiness.
    it->second->second = it->second->second || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return std::nullopt;
  }
  std::optional<Displaced> displaced;
  if (lru_.size() == entries_) {
    auto& [old_frame, old_dirty] = lru_.back();
    if (old_dirty) displaced = Displaced{old_frame * block_size_, true};
    index_.erase(old_frame);
    lru_.pop_back();
  }
  lru_.emplace_front(f, dirty);
  index_[f] = lru_.begin();
  return displaced;
}

std::optional<bool> VictimCache::extract(Addr addr) {
  auto it = index_.find(frame(addr));
  if (it == index_.end()) {
    probes_.record(false);
    return std::nullopt;
  }
  probes_.record(true);
  const bool dirty = it->second->second;
  lru_.erase(it->second);
  index_.erase(it);
  return dirty;
}

bool VictimCache::probe(Addr addr) const {
  return index_.find(frame(addr)) != index_.end();
}

void VictimCache::export_stats(StatSet& out) const {
  out.add(name_ + ".hits", probes_.hits);
  out.add(name_ + ".misses", probes_.misses);
  // Fault-only key: kept out of un-faulted runs so their stat/JSONL output
  // stays byte-identical to the pre-fault-layer format.
  if (fault_ != nullptr) out.add(name_ + ".invalidated", invalidated_);
}

}  // namespace selcache::memsys
