#include "memsys/tlb.h"

#include <algorithm>

#include "support/check.h"

namespace selcache::memsys {

Tlb::Tlb(TlbConfig cfg) : cfg_(std::move(cfg)) {
  SELCACHE_CHECK(cfg_.assoc > 0);
  SELCACHE_CHECK(cfg_.entries % cfg_.assoc == 0);
  SELCACHE_CHECK(cfg_.page_size > 0);
  num_sets_ = cfg_.entries / cfg_.assoc;
  page_pow2_ = is_pow2(cfg_.page_size);
  if (page_pow2_) page_shift_ = log2_exact(cfg_.page_size);
  sets_pow2_ = is_pow2(num_sets_);
  if (sets_pow2_) set_mask_ = num_sets_ - 1;
  entries_.resize(cfg_.entries);
  way_.resize(num_sets_, 0);
}

Cycle Tlb::access_scan(std::uint64_t si, Addr vpn) {
  Entry* set = &entries_[si * cfg_.assoc];
  const kernels::ProbeResult pr = kernels::probe_way(set, cfg_.assoc, vpn);
  if (pr.hit) {
    set[pr.way].lru = bump();
    stats_.record(true);
    way_[si] = pr.way;
    return 0;
  }
  stats_.record(false);
  // Refill where a fill would go: first invalid entry, else the LRU entry.
  Entry& victim = set[pr.way];
  victim.valid = true;
  victim.vpn = vpn;
  victim.lru = bump();
  // The freshly refilled way is the likeliest next hit in this set.
  way_[si] = static_cast<std::uint32_t>(&victim - set);
  return cfg_.miss_penalty;
}

void Tlb::renormalize() {
  std::vector<Entry*> order;
  order.reserve(entries_.size());
  for (Entry& e : entries_) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const Entry* a, const Entry* b) { return a->lru < b->lru; });
  std::uint32_t next = 0;
  for (Entry* e : order) e->lru = ++next;
  stamp_ = next;
}

bool Tlb::probe(Addr addr) const {
  const Addr vpn = vpn_of(addr);
  const Entry* set = &entries_[set_index(vpn) * cfg_.assoc];
  return kernels::match_way(set, cfg_.assoc, vpn) != kernels::kNoWay;
}

void Tlb::export_stats(StatSet& out) const {
  out.add(cfg_.name + ".hits", stats_.hits);
  out.add(cfg_.name + ".misses", stats_.misses);
}

}  // namespace selcache::memsys
