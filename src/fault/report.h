// Per-cell outcome bookkeeping for failure-isolated sweeps.
//
// Every (workload, version) cell of a resilient sweep produces exactly one
// CellOutcome — succeeded, succeeded-but-degraded, or failed after retries —
// and the FailureReport collects them in fixed (workload, version) order so
// the rendered table / CSV / JSONL is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace selcache::fault {

struct CellOutcome {
  enum class Status : std::uint8_t {
    Ok,        ///< simulation completed, no degradation event
    Degraded,  ///< completed, but the controller demoted to safe mode
    Failed,    ///< all attempts threw; cell quarantined
  };

  std::string workload;
  std::string version;  ///< stable version key ("base", "selective", ...)
  Status status = Status::Ok;
  std::uint32_t attempts = 1;        ///< attempts made (retries = attempts-1)
  std::uint64_t fault_seed = 0;      ///< injector seed of the final attempt
  std::uint64_t faults_injected = 0; ///< final successful attempt (0 if failed)
  std::uint64_t degradations = 0;    ///< safe-mode demotions observed
  std::string error;                 ///< last exception text when Failed

  bool operator==(const CellOutcome&) const = default;
};

const char* to_string(CellOutcome::Status s);

struct FailureReport {
  std::vector<CellOutcome> cells;

  std::size_t failed_cells() const;
  std::size_t degraded_cells() const;

  /// Human-readable summary table (all cells).
  std::string table() const;
  /// RFC-4180 CSV with header row.
  std::string csv() const;
  /// One JSON object per cell.
  std::string jsonl() const;

  bool operator==(const FailureReport&) const = default;
};

}  // namespace selcache::fault
