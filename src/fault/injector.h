// The fault injector: one per simulated task, attached (non-owning) to the
// components whose state the fault model covers. Hooks are passive — the
// component calls IN at the point where the corresponding state is updated,
// and the injector either leaves the update alone or perturbs it. All
// randomness comes from a private SplitMix64 stream, so a given
// (config, call sequence) is bit-reproducible.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault.h"
#include "support/rng.h"
#include "support/stats.h"

namespace selcache::fault {

/// Which saturating-counter table a corrupt_counter call comes from.
enum class CounterSite : std::uint8_t { Mat, Sldt };

/// Which auxiliary buffer a should_invalidate call comes from.
enum class BufferSite : std::uint8_t { BypassBuffer, L1Victim, L2Victim };

class Injector {
 public:
  /// `watchdog_accesses` caps the number of on_access calls (0 = no cap);
  /// exceeding it throws WatchdogExceeded regardless of the fault kind.
  explicit Injector(FaultConfig cfg, std::uint64_t watchdog_accesses = 0)
      : cfg_(cfg), rng_(cfg.seed), watchdog_(watchdog_accesses) {}

  /// Counter-update hook (MAT touch / SLDT note). Given the counter's
  /// post-update value and ceiling, returns a raw replacement value when a
  /// CounterFlip/CounterReset fault fires, nullopt otherwise. A flipped
  /// value may exceed `max` — that is the point: integrity checks must be
  /// able to observe a real invariant violation.
  std::optional<std::uint32_t> corrupt_counter(std::uint32_t value,
                                               std::uint32_t max,
                                               CounterSite site);

  /// Toggle-delivery hook (TraceEngine -> Controller boundary). Writes the
  /// directions actually delivered into `out[0..1]` and returns their count
  /// (0 = dropped/held, 1 = normal, 2 = duplicated or reordered pair).
  int transform_toggle(bool on, bool out[2]);

  /// Buffer-insert hook: should the LRU entry of `site` be silently
  /// invalidated before this insert?
  bool should_invalidate(BufferSite site);

  /// Per-access hook (top of Hierarchy::access): advances the watchdog and
  /// the TaskCrash fault. Throws WatchdogExceeded / InjectedCrash.
  void on_access();

  const FaultConfig& config() const { return cfg_; }
  std::uint64_t injected() const { return injected_; }
  std::uint64_t accesses_observed() const { return accesses_; }

  /// Export fault.* counters. Only called when an injector is attached, so
  /// un-faulted runs keep their stat key set (and JSONL output) unchanged.
  void export_stats(StatSet& out) const;

 private:
  bool fire();  ///< one Bernoulli draw at cfg_.rate; counts injected_ on hit

  FaultConfig cfg_;
  Rng rng_;
  std::uint64_t watchdog_;
  std::uint64_t accesses_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t counters_corrupted_ = 0;
  std::uint64_t toggles_dropped_ = 0;
  std::uint64_t toggles_duplicated_ = 0;
  std::uint64_t toggles_reordered_ = 0;
  std::uint64_t entries_invalidated_ = 0;
  bool stash_valid_ = false;  ///< ToggleReorder: a marker is being held
  bool stash_on_ = false;
};

}  // namespace selcache::fault
