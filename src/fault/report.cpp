#include "fault/report.h"

#include <algorithm>

#include "support/table.h"
#include "trace/jsonl.h"

namespace selcache::fault {

// CSV fields go through the shared selcache::csv_field (support/table.h).

const char* to_string(CellOutcome::Status s) {
  switch (s) {
    case CellOutcome::Status::Ok: return "ok";
    case CellOutcome::Status::Degraded: return "degraded";
    case CellOutcome::Status::Failed: return "failed";
  }
  return "?";
}

std::size_t FailureReport::failed_cells() const {
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(), [](const CellOutcome& c) {
        return c.status == CellOutcome::Status::Failed;
      }));
}

std::size_t FailureReport::degraded_cells() const {
  return static_cast<std::size_t>(
      std::count_if(cells.begin(), cells.end(), [](const CellOutcome& c) {
        return c.status == CellOutcome::Status::Degraded;
      }));
}

std::string FailureReport::table() const {
  TextTable t({"Workload", "Version", "Status", "Attempts", "FaultSeed",
               "Injected", "Degradations", "Error"});
  for (const CellOutcome& c : cells) {
    t.add_row({c.workload, c.version, to_string(c.status),
               std::to_string(c.attempts), std::to_string(c.fault_seed),
               std::to_string(c.faults_injected),
               std::to_string(c.degradations), c.error});
  }
  return t.str();
}

std::string FailureReport::csv() const {
  std::string out =
      "workload,version,status,attempts,fault_seed,faults_injected,"
      "degradations,error\n";
  for (const CellOutcome& c : cells) {
    out += csv_field(c.workload);
    out += ',';
    out += csv_field(c.version);
    out += ',';
    out += to_string(c.status);
    out += ',';
    out += std::to_string(c.attempts);
    out += ',';
    out += std::to_string(c.fault_seed);
    out += ',';
    out += std::to_string(c.faults_injected);
    out += ',';
    out += std::to_string(c.degradations);
    out += ',';
    out += csv_field(c.error);
    out += '\n';
  }
  return out;
}

std::string FailureReport::jsonl() const {
  std::string out;
  for (const CellOutcome& c : cells) {
    out += "{\"workload\":\"";
    out += trace::json_escape(c.workload);
    out += "\",\"version\":\"";
    out += trace::json_escape(c.version);
    out += "\",\"status\":\"";
    out += to_string(c.status);
    out += "\",\"attempts\":";
    out += std::to_string(c.attempts);
    out += ",\"fault_seed\":";
    out += std::to_string(c.fault_seed);
    out += ",\"faults_injected\":";
    out += std::to_string(c.faults_injected);
    out += ",\"degradations\":";
    out += std::to_string(c.degradations);
    out += ",\"error\":\"";
    out += trace::json_escape(c.error);
    out += "\"}\n";
  }
  return out;
}

}  // namespace selcache::fault
