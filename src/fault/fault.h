// Fault model for the selective-cache simulator.
//
// The paper's mechanism depends on fragile run-time state: activate /
// deactivate markers in the instruction stream, MAT/SLDT saturating
// counters, and bypass-buffer / victim-cache entries. This library defines
// a deterministic, seed-driven fault model over exactly that state so the
// degradation behavior of each scheme can be measured (EXPERIMENTS.md) and
// the sweep engine's failure isolation can be exercised.
//
// Everything here is pay-for-what-you-use: components hold a nullptr
// `fault::Injector*` (mirroring the `trace::Recorder*` pattern) and an
// un-faulted run never draws a random number.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace selcache::fault {

/// What kind of fault an Injector introduces. Exactly one kind per
/// injector; composite campaigns run multiple sweeps.
enum class FaultKind : std::uint8_t {
  None,             ///< injector armed only for the watchdog
  CounterFlip,      ///< flip one bit of a MAT/SLDT saturating counter
  CounterReset,     ///< zero a MAT/SLDT saturating counter
  ToggleDrop,       ///< swallow an activate/deactivate marker
  ToggleDup,        ///< deliver a marker twice
  ToggleReorder,    ///< hold a marker and deliver it after the next one
  EntryInvalidate,  ///< silently drop a bypass-buffer / victim-cache entry
  TaskCrash,        ///< throw InjectedCrash out of the simulation loop
};

const char* to_string(FaultKind k);

/// Parse the CLI spelling ("toggle-drop", "counter-flip", ...). Returns
/// nullopt for an unknown name.
std::optional<FaultKind> fault_kind_by_name(std::string_view name);

/// One fault campaign: which fault, how often, and the seed that makes it
/// reproducible. `rate` is the per-opportunity probability (per counter
/// update, per toggle, per buffer insert, per access — whichever hook the
/// kind listens on).
struct FaultConfig {
  FaultKind kind = FaultKind::None;
  double rate = 0.0;
  std::uint64_t seed = 0x5eedfa17u;

  bool enabled() const { return kind != FaultKind::None && rate > 0.0; }
};

/// Thrown by Injector::on_access when the TaskCrash fault fires. Unwinds
/// through the (fully task-local) simulator state and is caught by the
/// resilient runner, which quarantines the cell.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by Injector::on_access when a run exceeds its access budget —
/// the per-task watchdog that kills runaway simulations.
class WatchdogExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Derive the per-task injector seed for one (workload, version, attempt)
/// cell from the sweep-level base seed. Deterministic and
/// order-independent, so a parallel sweep seeds each cell identically to a
/// serial one, and each retry attempt sees a fresh but reproducible stream.
std::uint64_t task_seed(std::uint64_t base, std::string_view workload,
                        std::uint32_t version_index, std::uint32_t attempt);

}  // namespace selcache::fault
