#include "fault/injector.h"

#include <bit>

namespace selcache::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::CounterFlip: return "counter-flip";
    case FaultKind::CounterReset: return "counter-reset";
    case FaultKind::ToggleDrop: return "toggle-drop";
    case FaultKind::ToggleDup: return "toggle-dup";
    case FaultKind::ToggleReorder: return "toggle-reorder";
    case FaultKind::EntryInvalidate: return "entry-invalidate";
    case FaultKind::TaskCrash: return "task-crash";
  }
  return "?";
}

std::optional<FaultKind> fault_kind_by_name(std::string_view name) {
  for (FaultKind k :
       {FaultKind::None, FaultKind::CounterFlip, FaultKind::CounterReset,
        FaultKind::ToggleDrop, FaultKind::ToggleDup, FaultKind::ToggleReorder,
        FaultKind::EntryInvalidate, FaultKind::TaskCrash}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::uint64_t task_seed(std::uint64_t base, std::string_view workload,
                        std::uint32_t version_index, std::uint32_t attempt) {
  // FNV-1a over the workload name folded into the base seed, then one
  // SplitMix64 finalization step so nearby (version, attempt) pairs land in
  // unrelated parts of the stream.
  std::uint64_t h = base ^ 0xcbf29ce484222325ULL;
  for (char c : workload)
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h ^= (static_cast<std::uint64_t>(version_index) << 32) | attempt;
  return Rng(h).next();
}

bool Injector::fire() {
  if (cfg_.rate <= 0.0) return false;
  if (!rng_.chance(cfg_.rate)) return false;
  ++injected_;
  return true;
}

std::optional<std::uint32_t> Injector::corrupt_counter(std::uint32_t value,
                                                       std::uint32_t max,
                                                       CounterSite site) {
  (void)site;
  if (cfg_.kind != FaultKind::CounterFlip &&
      cfg_.kind != FaultKind::CounterReset)
    return std::nullopt;
  if (!fire()) return std::nullopt;
  ++counters_corrupted_;
  if (cfg_.kind == FaultKind::CounterReset) return 0;
  // Flip a uniformly chosen bit among the counter's value bits plus one
  // guard bit, so the corrupted value can land above `max` and violate the
  // table invariant (a flip confined to value bits of a 2^n-1 ceiling never
  // would).
  const unsigned bits = static_cast<unsigned>(std::bit_width(max)) + 1;
  const unsigned bit = static_cast<unsigned>(rng_.below(bits));
  return value ^ (1u << bit);
}

int Injector::transform_toggle(bool on, bool out[2]) {
  switch (cfg_.kind) {
    case FaultKind::ToggleDrop:
      if (fire()) {
        ++toggles_dropped_;
        return 0;
      }
      break;
    case FaultKind::ToggleDup:
      if (fire()) {
        ++toggles_duplicated_;
        out[0] = on;
        out[1] = on;
        return 2;
      }
      break;
    case FaultKind::ToggleReorder:
      if (stash_valid_) {
        // Deliver the current marker first, then the one held back — the
        // pair arrives swapped relative to program order.
        stash_valid_ = false;
        out[0] = on;
        out[1] = stash_on_;
        return 2;
      }
      if (fire()) {
        ++toggles_reordered_;
        stash_valid_ = true;
        stash_on_ = on;
        return 0;  // held; delivered after the next marker (or lost at end)
      }
      break;
    default:
      break;
  }
  out[0] = on;
  return 1;
}

bool Injector::should_invalidate(BufferSite site) {
  (void)site;
  if (cfg_.kind != FaultKind::EntryInvalidate) return false;
  if (!fire()) return false;
  ++entries_invalidated_;
  return true;
}

void Injector::on_access() {
  ++accesses_;
  if (watchdog_ != 0 && accesses_ > watchdog_)
    throw WatchdogExceeded("watchdog: access count exceeded " +
                           std::to_string(watchdog_));
  if (cfg_.kind == FaultKind::TaskCrash && fire())
    throw InjectedCrash("injected crash at access " +
                        std::to_string(accesses_));
}

void Injector::export_stats(StatSet& out) const {
  out.add("fault.injected", injected_);
  out.add("fault.counters_corrupted", counters_corrupted_);
  out.add("fault.toggles_dropped", toggles_dropped_);
  out.add("fault.toggles_duplicated", toggles_duplicated_);
  out.add("fault.toggles_reordered", toggles_reordered_);
  out.add("fault.entries_invalidated", entries_invalidated_);
}

}  // namespace selcache::fault
