// Prediction-driven region classification (the tentpole's analysis-layer
// integration): builds the transform::OptimizeOptions::method_predictor
// hook from the static locality analyzer.
//
// The paper's §2.3 heuristic counts *static* references: a loop whose
// analyzable-to-total ref ratio meets the threshold goes to the compiler.
// The predictor re-weights that judgment by predicted *dynamic* access
// counts — a single pointer chase buried under a deep nest dominates the
// loop's runtime behavior even though it is one reference among many, and
// vice versa. Decisions still happen only at innermost loops (the Figure 2
// walk propagates them upward unchanged), and any loop the analyzer cannot
// judge falls back to the static heuristic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "analysis/method_selection.h"
#include "locality/analyzer.h"

namespace selcache::locality {

struct PredictorOptions {
  LocalityOptions locality{};
  /// Analyzable fraction of predicted dynamic accesses at or above which an
  /// innermost loop is assigned to the compiler. Plays the role of the
  /// paper's static threshold, access-weighted.
  double dynamic_threshold = analysis::kDefaultThreshold;
};

/// Build a predictor suitable for OptimizeOptions::method_predictor. The
/// returned callable caches one program's prediction at a time (region
/// detection queries every innermost loop of the same program in a burst)
/// and is safe to share across parallel sweep tasks.
std::function<std::optional<analysis::Method>(const ir::Program&,
                                              const ir::LoopNode&)>
make_method_predictor(const PredictorOptions& opt = {});

/// Stable hash of the predictor configuration, for
/// OptimizeOptions::method_predictor_fingerprint (tape stream identity).
std::uint64_t method_predictor_fingerprint(const PredictorOptions& opt = {});

}  // namespace selcache::locality
