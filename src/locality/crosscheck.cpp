#include "locality/crosscheck.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace selcache::locality {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

bool counts_match(double predicted, double measured, bool exact,
                  double rel_tol) {
  if (exact) return std::abs(predicted - measured) < 0.5;
  const double scale = std::max(1.0, measured);
  return std::abs(predicted - measured) <= rel_tol * scale;
}

}  // namespace

std::size_t crosscheck(const ir::Program& p, const ProgramPrediction& pred,
                       const MeasuredProfile& meas, verify::Report& report,
                       const CrosscheckOptions& opt) {
  report.set_pass("locality");
  const std::size_t before = report.diagnostics().size();
  using verify::Severity;

  // --- SP-SANITY: the prediction must be internally consistent -----------
  double ref_accesses = 0.0, ref_analyzable = 0.0;
  double ref_l1 = 0.0;
  bool have_l1 = false;
  for (const auto& r : pred.refs) {
    ref_accesses += r.accesses;
    if (r.accesses < 0.0)
      report.add(Severity::Error, "SP-SANITY", r.location,
                 r.ref + ": negative access count " + fmt(r.accesses));
    if (r.verdict == Verdict::Analyzable) {
      ref_analyzable += r.accesses;
      if (!r.l1_misses) {
        report.add(Severity::Error, "SP-SANITY", r.location,
                   r.ref + ": analyzable but has no L1 miss estimate");
      } else {
        have_l1 = true;
        ref_l1 += *r.l1_misses;
        if (*r.l1_misses < 0.0 || *r.l1_misses > r.accesses * 1.000001)
          report.add(Severity::Error, "SP-SANITY", r.location,
                     r.ref + ": miss estimate " + fmt(*r.l1_misses) +
                         " outside [0, accesses=" + fmt(r.accesses) + "]");
      }
    }
  }
  const double total_scale = std::max(1.0, ref_accesses);
  if (std::abs(pred.total_accesses - ref_accesses) > 1e-6 * total_scale ||
      std::abs(pred.analyzable_accesses - ref_analyzable) >
          1e-6 * total_scale)
    report.add(Severity::Error, "SP-SANITY", "",
               "program totals (" + fmt(pred.total_accesses) + "/" +
                   fmt(pred.analyzable_accesses) +
                   ") do not equal the sum over references (" +
                   fmt(ref_accesses) + "/" + fmt(ref_analyzable) + ")");
  else if (have_l1 &&
           (!pred.l1_misses ||
            std::abs(*pred.l1_misses - ref_l1) > 1e-6 * std::max(1.0, ref_l1)))
    report.add(Severity::Error, "SP-SANITY", "",
               "program L1 miss total does not equal the sum over references");

  // --- SP-VERDICT: verdicts must re-derive from the IR --------------------
  const std::vector<Verdict> fresh = ref_verdicts(p);
  if (fresh.size() != pred.refs.size()) {
    report.add(Severity::Error, "SP-VERDICT", "",
               "prediction enumerates " + std::to_string(pred.refs.size()) +
                   " references, the program has " +
                   std::to_string(fresh.size()));
  } else {
    for (std::size_t i = 0; i < fresh.size(); ++i)
      if (fresh[i] != pred.refs[i].verdict)
        report.add(Severity::Error, "SP-VERDICT", pred.refs[i].location,
                   pred.refs[i].ref + ": predicted " +
                       to_string(pred.refs[i].verdict) +
                       " but the IR re-derives " + to_string(fresh[i]));
  }

  // --- SP-ACCESS: program-level access count ------------------------------
  const auto measured_total = static_cast<double>(meas.l1d_accesses);
  if (!counts_match(pred.total_accesses, measured_total,
                    pred.total_accesses_exact, opt.access_rel_tol))
    report.add(Severity::Error, "SP-ACCESS", "",
               "predicted " + fmt(pred.total_accesses) + " data accesses (" +
                   (pred.total_accesses_exact ? "exact" : "estimated") +
                   "), simulation performed " + fmt(measured_total));

  // --- SP-ACCESS-ENTITY / SP-COVERAGE -------------------------------------
  std::set<std::string> seen;
  for (const auto& e : pred.entities) {
    seen.insert(e.entity);
    const auto it = meas.entities.find(e.entity);
    const double measured =
        it == meas.entities.end() ? 0.0
                                  : static_cast<double>(it->second.accesses);
    if (e.accesses > 0.0 && measured == 0.0) {
      report.add(Severity::Error, "SP-COVERAGE", "",
                 "entity '" + e.entity +
                     "' predicted to be touched but never accessed");
      continue;
    }
    if (!counts_match(e.accesses, measured, e.accesses_exact,
                      opt.access_rel_tol))
      report.add(Severity::Error, "SP-ACCESS-ENTITY", "",
                 "entity '" + e.entity + "': predicted " + fmt(e.accesses) +
                     " accesses (" +
                     (e.accesses_exact ? "exact" : "estimated") +
                     "), measured " + fmt(measured));
  }
  for (const auto& [name, counts] : meas.entities)
    if (counts.accesses > 0 && seen.find(name) == seen.end())
      report.add(Severity::Error, "SP-COVERAGE", "",
                 "entity '" + name + "' accessed " +
                     std::to_string(counts.accesses) +
                     " times but absent from the prediction");
  if (meas.unattributed > 0)
    report.add(Severity::Error, "SP-COVERAGE", "",
               std::to_string(meas.unattributed) +
                   " accesses hit no known data entity");

  // --- SP-MISS: program-level miss ratio -----------------------------------
  const bool judge_misses =
      pred.verdict(opt.coverage_floor) == Verdict::Analyzable &&
      pred.total_accesses_exact && meas.l1d_accesses > 0;
  if (judge_misses && pred.l1_miss_ratio()) {
    const double predicted = *pred.l1_miss_ratio();
    const double measured = meas.l1d_miss_ratio();
    if (std::abs(predicted - measured) > opt.miss_ratio_abs_tol)
      report.add(Severity::Error, "SP-MISS", "",
                 "predicted L1D miss ratio " + fmt(predicted) +
                     ", measured " + fmt(measured) + " (tolerance " +
                     fmt(opt.miss_ratio_abs_tol) + ")");
  }

  // --- SP-MISS-ENTITY: per-entity miss counts ------------------------------
  if (judge_misses) {
    for (const auto& e : pred.entities) {
      if (!e.l1_misses || !e.accesses_exact) continue;
      const auto it = meas.entities.find(e.entity);
      if (it == meas.entities.end()) continue;
      const auto measured = static_cast<double>(it->second.l1d_misses);
      const double abs_err = std::abs(*e.l1_misses - measured);
      if (abs_err <= opt.entity_miss_abs_floor) continue;
      if (abs_err > opt.entity_miss_rel_tol * std::max(1.0, measured))
        report.add(Severity::Error, "SP-MISS-ENTITY", "",
                   "entity '" + e.entity + "': predicted " +
                       fmt(*e.l1_misses) + " L1D misses, measured " +
                       fmt(measured));
    }
  }

  return report.diagnostics().size() - before;
}

}  // namespace selcache::locality
