#include "locality/predictor.h"

#include <bit>
#include <memory>
#include <mutex>

namespace selcache::locality {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One-program prediction cache shared by all copies of the predictor.
/// Region detection asks about every innermost loop of the same program
/// back to back; parallel sweeps may do so from several tasks at once.
struct Cache {
  std::mutex mu;
  const ir::Program* program = nullptr;
  ProgramPrediction prediction;
};

}  // namespace

std::function<std::optional<analysis::Method>(const ir::Program&,
                                              const ir::LoopNode&)>
make_method_predictor(const PredictorOptions& opt) {
  auto cache = std::make_shared<Cache>();
  return [opt, cache](const ir::Program& p, const ir::LoopNode& loop)
             -> std::optional<analysis::Method> {
    std::lock_guard<std::mutex> lock(cache->mu);
    if (cache->program != &p) {
      cache->prediction = predict(p, opt.locality);
      cache->program = &p;
    }
    const auto it = cache->prediction.loops.find(&loop);
    if (it == cache->prediction.loops.end()) return std::nullopt;
    const LoopPrediction& lp = it->second;
    if (lp.accesses <= 0.0) return std::nullopt;
    const double dyn_frac = lp.analyzable_accesses / lp.accesses;
    return dyn_frac >= opt.dynamic_threshold ? analysis::Method::Compiler
                                             : analysis::Method::Hardware;
  };
}

std::uint64_t method_predictor_fingerprint(const PredictorOptions& opt) {
  std::uint64_t h = 0x5e1cca11fe1dULL;
  h = fnv1a(h, opt.locality.l1.size_bytes);
  h = fnv1a(h, opt.locality.l1.block_size);
  h = fnv1a(h, opt.locality.l2.size_bytes);
  h = fnv1a(h, opt.locality.l2.block_size);
  h = fnv1a(h, std::bit_cast<std::uint64_t>(opt.locality.capacity_fraction));
  h = fnv1a(h, std::bit_cast<std::uint64_t>(opt.dynamic_threshold));
  return h | 1;  // never 0: fingerprint 0 means "no predictor"
}

}  // namespace selcache::locality
