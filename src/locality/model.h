// Static locality prediction — result model.
//
// The analyzer (analyzer.h) walks an ir::Program without simulating it and
// produces, per memory reference, a symbolic reuse vector (one entry per
// enclosing loop level), an estimated dynamic access count (closed-form over
// trip counts), and an estimated L1D/L2 miss count for a given cache
// geometry. References the subscript language cannot express affinely
// (products, quotients, subscripted subscripts, pointer chases, record
// fields) get an explicit NonAnalyzable verdict instead of a number — the
// paper's §2.3 distinction, upgraded from "can the compiler transform it"
// to "can its cache behavior be predicted in closed form".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.h"

namespace selcache::locality {

/// Why a reference (or a whole program) resists closed-form analysis.
enum class Verdict {
  Analyzable,     ///< affine subscripts / scalar: misses predicted
  NonAnalyzable,  ///< irregular: access count may still be exact
};

inline const char* to_string(Verdict v) {
  return v == Verdict::Analyzable ? "analyzable" : "non-analyzable";
}

/// Reuse of one reference with respect to one enclosing loop level
/// (Wolf & Lam vocabulary, specialized to our separable-affine IR).
enum class Reuse {
  None,          ///< every iteration touches a new cache line
  SelfSpatial,   ///< consecutive iterations walk within a line
  SelfTemporal,  ///< the subscripts ignore this loop variable
  GroupSpatial,  ///< a leader reference already fetched the line (offset)
  GroupTemporal  ///< a leader reference touches the identical location
};

inline char reuse_code(Reuse r) {
  switch (r) {
    case Reuse::None: return '-';
    case Reuse::SelfSpatial: return 'S';
    case Reuse::SelfTemporal: return 'T';
    case Reuse::GroupSpatial: return 'g';
    case Reuse::GroupTemporal: return 'G';
  }
  return '?';
}

/// One enclosing loop level of a reference, outermost first.
struct LevelReuse {
  std::string var;             ///< induction variable name
  double trip = 0.0;           ///< iterations (exact or midpoint estimate)
  bool trip_exact = true;      ///< (upper - lower) was loop-invariant
  std::int64_t stride_bytes = 0;  ///< address advance per iteration
  Reuse reuse = Reuse::None;
};

/// Prediction for one memory reference (plus one synthetic entry for each
/// index-array load feeding a subscripted subscript — those loads are
/// themselves affine and predictable even when their consumer is not).
struct RefPrediction {
  std::string location;  ///< IR path, "loop j/loop i/stmt 'elim_d'"
  std::string ref;       ///< rendered reference, "a[i][j]" / "*H" / "s"
  std::string entity;    ///< data entity touched: array/pool name, "(scalars)"
  bool is_write = false;
  Verdict verdict = Verdict::Analyzable;
  std::string reason;    ///< non-analyzable cause ("product subscript", ...)

  std::vector<LevelReuse> levels;  ///< enclosing loops, outermost first
  double accesses = 0.0;           ///< predicted dynamic accesses
  bool accesses_exact = true;      ///< all trip counts were exact
  /// Estimated demand misses (L1D / L2); absent when non-analyzable.
  std::optional<double> l1_misses;
  std::optional<double> l2_misses;

  /// Estimated reuse distance (bytes touched between successive reuses of
  /// the same line — the one-iteration footprint of the reuse-carrying
  /// loop); absent without self reuse.
  std::optional<double> reuse_distance_bytes;
};

/// Per data entity (array / pool / the packed scalar block) aggregation —
/// the granularity the measured profile can attribute addresses to.
struct EntityPrediction {
  std::string entity;
  double accesses = 0.0;
  bool accesses_exact = true;
  double analyzable_accesses = 0.0;
  std::optional<double> l1_misses;  ///< absent if any ref is non-analyzable
  std::optional<double> l2_misses;
};

/// Prediction for one loop (aggregated over every reference in its subtree).
struct LoopPrediction {
  std::string location;         ///< "loop j/loop i"
  double trip = 0.0;
  double one_iteration_footprint_bytes = 0.0;  ///< drives capacity tests
  double accesses = 0.0;        ///< refs in subtree, per full program run
  double analyzable_accesses = 0.0;
  std::optional<double> l1_misses;  ///< over analyzable refs only
  /// Predicted miss ratio of the analyzable references (absent when the
  /// subtree has none) — the quantity the prediction-driven region
  /// classifier thresholds on.
  std::optional<double> analyzable_miss_ratio() const {
    if (!l1_misses || analyzable_accesses <= 0.0) return std::nullopt;
    return *l1_misses / analyzable_accesses;
  }
};

struct ProgramPrediction {
  std::string program;
  std::vector<RefPrediction> refs;
  std::vector<EntityPrediction> entities;  ///< sorted by entity name
  /// Keyed by loop identity for the classifier hook; also rendered in
  /// CLI/report order (pre-order).
  std::map<const ir::LoopNode*, LoopPrediction> loops;

  double total_accesses = 0.0;
  bool total_accesses_exact = true;
  double analyzable_accesses = 0.0;
  std::optional<double> l1_misses;  ///< sum over analyzable refs
  std::optional<double> l2_misses;

  /// Fraction of predicted dynamic accesses with analyzable verdicts.
  double analyzable_fraction() const {
    return total_accesses <= 0.0 ? 1.0
                                 : analyzable_accesses / total_accesses;
  }
  /// Program verdict: miss-ratio predictions are only meaningful when
  /// almost every access is analyzable.
  Verdict verdict(double coverage_floor = 0.99) const {
    return analyzable_fraction() >= coverage_floor ? Verdict::Analyzable
                                                   : Verdict::NonAnalyzable;
  }
  /// Predicted L1D miss ratio over analyzable accesses (absent when the
  /// program has none).
  std::optional<double> l1_miss_ratio() const {
    if (!l1_misses || analyzable_accesses <= 0.0) return std::nullopt;
    return *l1_misses / analyzable_accesses;
  }

  const EntityPrediction* entity(const std::string& name) const {
    for (const auto& e : entities)
      if (e.entity == name) return &e;
    return nullptr;
  }
};

}  // namespace selcache::locality
