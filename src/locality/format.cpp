#include "locality/format.h"

#include <sstream>

#include "support/table.h"

namespace selcache::locality {
namespace {

std::string num(double v, int prec = 0) { return TextTable::num(v, prec); }

std::string opt_num(const std::optional<double>& v, int prec = 0) {
  return v ? num(*v, prec) : "-";
}

std::string reuse_vector(const RefPrediction& r) {
  std::string out;
  for (const auto& l : r.levels) {
    if (!out.empty()) out += ",";
    out += l.var + ":";
    out += reuse_code(l.reuse);
  }
  return out.empty() ? "-" : out;
}

std::string ratio_of(const std::optional<double>& misses, double accesses) {
  if (!misses || accesses <= 0.0) return "-";
  return num(*misses / accesses, 4);
}

}  // namespace

std::string prediction_str(const ProgramPrediction& pred) {
  std::ostringstream os;
  os << "program: " << pred.program << "\n";

  TextTable refs({"location", "ref", "verdict", "reuse", "accesses",
                  "l1_misses", "l1_ratio", "reuse_dist_B"});
  for (const auto& r : pred.refs) {
    refs.add_row({r.location,
                  (r.is_write ? "st " : "ld ") + r.ref,
                  r.verdict == Verdict::Analyzable ? "analyzable" : r.reason,
                  reuse_vector(r),
                  num(r.accesses) + (r.accesses_exact ? "" : "~"),
                  opt_num(r.l1_misses),
                  ratio_of(r.l1_misses, r.accesses),
                  opt_num(r.reuse_distance_bytes)});
  }
  os << refs.str() << "\n";

  TextTable loops({"loop", "trip", "iter_footprint_B", "accesses",
                   "analyzable", "l1_misses", "l1_ratio"});
  for (const auto& [node, lp] : pred.loops) {
    loops.add_row({lp.location, num(lp.trip),
                   num(lp.one_iteration_footprint_bytes), num(lp.accesses),
                   num(lp.analyzable_accesses), opt_num(lp.l1_misses),
                   ratio_of(lp.l1_misses, lp.analyzable_accesses)});
  }
  os << loops.str() << "\n";

  os << "verdict: " << to_string(pred.verdict())
     << "  analyzable_fraction: " << num(pred.analyzable_fraction(), 4)
     << "\n";
  os << "accesses: " << num(pred.total_accesses)
     << (pred.total_accesses_exact ? " (exact)" : " (estimated)")
     << "  predicted_l1_misses: " << opt_num(pred.l1_misses)
     << "  predicted_l1_ratio: " << opt_num(pred.l1_miss_ratio(), 4)
     << "  predicted_l2_misses: " << opt_num(pred.l2_misses) << "\n";
  return os.str();
}

std::string prediction_csv(const ProgramPrediction& pred) {
  std::ostringstream os;
  os << "program,location,ref,is_write,verdict,reason,reuse,accesses,"
        "accesses_exact,l1_misses,l2_misses,reuse_distance_bytes\n";
  for (const auto& r : pred.refs) {
    os << csv_field(pred.program) << "," << csv_field(r.location) << ","
       << csv_field(r.ref) << "," << (r.is_write ? 1 : 0) << ","
       << to_string(r.verdict) << "," << csv_field(r.reason) << ","
       << csv_field(reuse_vector(r)) << "," << num(r.accesses) << ","
       << (r.accesses_exact ? 1 : 0) << "," << opt_num(r.l1_misses) << ","
       << opt_num(r.l2_misses) << "," << opt_num(r.reuse_distance_bytes)
       << "\n";
  }
  return os.str();
}

std::string comparison_str(const ProgramPrediction& pred,
                           const MeasuredProfile& meas) {
  std::ostringstream os;
  TextTable t({"entity", "pred_accesses", "meas_accesses", "pred_l1_misses",
               "meas_l1_misses", "pred_ratio", "meas_ratio"});
  for (const auto& e : pred.entities) {
    const auto it = meas.entities.find(e.entity);
    const double ma =
        it == meas.entities.end() ? 0.0
                                  : static_cast<double>(it->second.accesses);
    const double mm = it == meas.entities.end()
                          ? 0.0
                          : static_cast<double>(it->second.l1d_misses);
    t.add_row({e.entity, num(e.accesses) + (e.accesses_exact ? "" : "~"),
               num(ma), opt_num(e.l1_misses), num(mm),
               ratio_of(e.l1_misses, e.accesses),
               ma > 0.0 ? num(mm / ma, 4) : "-"});
  }
  t.add_row({"(total)",
             num(pred.total_accesses) +
                 (pred.total_accesses_exact ? "" : "~"),
             num(static_cast<double>(meas.l1d_accesses)),
             opt_num(pred.l1_misses),
             num(static_cast<double>(meas.l1d_misses)),
             opt_num(pred.l1_miss_ratio(), 4), num(meas.l1d_miss_ratio(), 4)});
  os << t.str();
  return os.str();
}

std::string comparison_csv(const ProgramPrediction& pred,
                           const MeasuredProfile& meas) {
  std::ostringstream os;
  os << "program,entity,pred_accesses,accesses_exact,meas_accesses,"
        "pred_l1_misses,meas_l1_misses,pred_ratio,meas_ratio\n";
  auto row = [&](const std::string& entity, double pa, bool exact, double ma,
                 const std::optional<double>& pm, double mm,
                 const std::optional<double>& pr) {
    os << csv_field(pred.program) << "," << csv_field(entity) << "," << num(pa)
       << "," << (exact ? 1 : 0) << "," << num(ma) << "," << opt_num(pm)
       << "," << num(mm) << "," << opt_num(pr, 6) << ","
       << (ma > 0.0 ? num(mm / ma, 6) : "-") << "\n";
  };
  for (const auto& e : pred.entities) {
    const auto it = meas.entities.find(e.entity);
    const double ma =
        it == meas.entities.end() ? 0.0
                                  : static_cast<double>(it->second.accesses);
    const double mm = it == meas.entities.end()
                          ? 0.0
                          : static_cast<double>(it->second.l1d_misses);
    std::optional<double> pr;
    if (e.l1_misses && e.accesses > 0.0) pr = *e.l1_misses / e.accesses;
    row(e.entity, e.accesses, e.accesses_exact, ma, e.l1_misses, mm, pr);
  }
  row("(total)", pred.total_accesses, pred.total_accesses_exact,
      static_cast<double>(meas.l1d_accesses), pred.l1_misses,
      static_cast<double>(meas.l1d_misses), pred.l1_miss_ratio());
  return os.str();
}

}  // namespace selcache::locality
