// Static locality analyzer: symbolic reuse vectors and closed-form miss
// estimates for an ir::Program against a cache geometry — no simulation.
//
// The model (documented in DESIGN.md §"Static locality prediction"):
//
//   * Every affine array reference has a per-loop-level byte stride
//     (subscript coefficients x layout strides). Stride 0 = self-temporal
//     reuse at that level; 0 < |stride x step| < block = self-spatial;
//     otherwise none. References to the same array whose strides agree and
//     whose constant offsets fall within a block form a group (leader pays
//     the misses, followers ride along).
//
//   * Trip counts come from the affine bounds: exact when (upper - lower)
//     is loop-invariant (all regular kernels, incl. tiled products), a
//     midpoint estimate otherwise (flagged, never silently).
//
//   * Miss estimation processes each reference's loop levels innermost to
//     outermost: a level's reuse is *realized* when the data touched by one
//     iteration of that loop (the level's one-iteration footprint, computed
//     from the distinct-line counts of every reference it encloses) fits in
//     the effective cache capacity. Realized temporal reuse keeps the line
//     warm for all outer levels; unrealized reuse re-misses every
//     iteration. Misses multiply level factors; accesses multiply trip
//     counts.
//
//   * Anything non-affine (products, quotients, subscripted subscripts,
//     pointer chases, record fields) is reported NonAnalyzable with an
//     exact access count but no miss estimate. The index-array load feeding
//     a subscripted subscript IS affine and gets its own prediction entry,
//     mirroring the trace engine's execution order.
#pragma once

#include "locality/model.h"
#include "memsys/cache_config.h"

namespace selcache::locality {

struct LocalityOptions {
  /// Cache geometries the estimate targets (defaults: Table 1 L1D / L2).
  memsys::CacheConfig l1{.name = "l1d",
                         .size_bytes = 32 * 1024,
                         .assoc = 4,
                         .block_size = 32,
                         .latency = 2};
  memsys::CacheConfig l2{.name = "l2",
                         .size_bytes = 512 * 1024,
                         .assoc = 4,
                         .block_size = 128,
                         .latency = 10};
  /// Fraction of the nominal capacity the footprint test may use. Below 1.0
  /// accounts for conflict misses and the LRU not being a perfect stack.
  double capacity_fraction = 0.75;
  /// Analyzable-access fraction at which the whole program's miss ratio is
  /// considered predictable.
  double coverage_floor = 0.99;
};

/// Analyze `p` (any product: base, optimized, or marked — toggles are
/// skipped). Pure function of the IR and the options; runs in microseconds.
ProgramPrediction predict(const ir::Program& p, const LocalityOptions& opt = {});

/// Geometry-independent re-derivation of each reference's verdict, in the
/// same enumeration order predict() uses (synthetic index-array loads
/// included). The cross-check lint compares a candidate prediction against
/// this to catch forged or stale verdicts.
std::vector<Verdict> ref_verdicts(const ir::Program& p);

}  // namespace selcache::locality
