// Rendering of locality predictions for the `selcache predict` CLI:
// aligned text tables (support::TextTable) and RFC-4180-ish CSV matching
// the repo's other CSV emitters.
#pragma once

#include <string>

#include "locality/analyzer.h"
#include "locality/measure.h"

namespace selcache::locality {

/// Per-reference reuse/miss table plus per-loop and program summaries.
std::string prediction_str(const ProgramPrediction& pred);

/// Per-reference CSV (one row per prediction entry, header included).
std::string prediction_csv(const ProgramPrediction& pred);

/// Side-by-side predicted-vs-measured table (per entity + totals).
std::string comparison_str(const ProgramPrediction& pred,
                           const MeasuredProfile& meas);

/// Per-entity comparison CSV.
std::string comparison_csv(const ProgramPrediction& pred,
                           const MeasuredProfile& meas);

}  // namespace selcache::locality
