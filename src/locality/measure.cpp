#include "locality/measure.h"

#include <algorithm>
#include <vector>

#include "codegen/data_env.h"
#include "codegen/trace_engine.h"
#include "hw/controller.h"
#include "support/check.h"

namespace selcache::locality {
namespace {

/// Attributes L1D accesses to entities by address interval.
class EntityProbe final : public memsys::DataAccessProbe {
 public:
  EntityProbe(const ir::Program& p, const codegen::DataEnv& env,
              MeasuredProfile& out)
      : out_(out) {
    for (std::size_t a = 0; a < p.arrays().size(); ++a) {
      const auto& layout = env.array_layout(static_cast<ir::ArrayId>(a));
      add(layout.base(), layout.footprint_bytes(), p.arrays()[a].name);
    }
    if (!p.scalars().empty())
      add(env.scalar_addr(0), 8ull * p.scalars().size(), "(scalars)");
    for (std::size_t pl = 0; pl < p.pools().size(); ++pl) {
      const auto& decl = p.pools()[pl];
      add(env.record_addr(static_cast<ir::PoolId>(pl), 0, 0),
          static_cast<std::uint64_t>(decl.count) * decl.elem_size, decl.name);
    }
    std::sort(spans_.begin(), spans_.end(),
              [](const Span& a, const Span& b) { return a.base < b.base; });
  }

  void on_l1d_access(Addr addr, bool /*is_write*/, bool hit) override {
    ++out_.l1d_accesses;
    if (!hit) ++out_.l1d_misses;
    // Entities are page-aligned and non-overlapping: the last span starting
    // at or below addr is the only candidate.
    auto it = std::upper_bound(
        spans_.begin(), spans_.end(), addr,
        [](Addr a, const Span& s) { return a < s.base; });
    if (it == spans_.begin() || addr >= (it - 1)->end) {
      ++out_.unattributed;
      return;
    }
    auto& e = out_.entities[(it - 1)->name];
    ++e.accesses;
    if (!hit) ++e.l1d_misses;
  }

 private:
  struct Span {
    Addr base = 0;
    Addr end = 0;
    std::string name;
  };

  void add(Addr base, std::uint64_t bytes, std::string name) {
    spans_.push_back({base, base + bytes, std::move(name)});
  }

  MeasuredProfile& out_;
  std::vector<Span> spans_;
};

}  // namespace

MeasuredProfile measure_program(const ir::Program& p,
                                const MeasureOptions& opt) {
  MeasuredProfile out;
  memsys::Hierarchy hierarchy(opt.hierarchy);
  hw::Controller controller(nullptr);
  cpu::TimingModel cpu(opt.cpu, hierarchy, controller);
  codegen::DataEnv env(p, {.seed = opt.data_seed});
  EntityProbe probe(p, env, out);
  hierarchy.set_probe(&probe);

  codegen::TraceEngine engine(p, env, cpu);
  engine.run();

  StatSet stats;
  hierarchy.export_stats(stats);
  out.l2_accesses = stats.get("l2.hits") + stats.get("l2.misses");
  out.l2_misses = stats.get("l2.misses");
  out.cycles = cpu.cycles();
  SELCACHE_CHECK_MSG(
      out.l1d_accesses == engine.loads_executed() + engine.stores_executed(),
      "probe missed data accesses");
  return out;
}

}  // namespace selcache::locality
