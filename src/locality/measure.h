// Measured ground truth for the static locality predictor: run one program
// through the real trace engine + memory hierarchy with an L1D access probe
// attached, attributing every data access and miss to the entity (array /
// pool / scalar block) that owns its address.
//
// Measurement runs use no hardware scheme (the prediction models the plain
// cache) — with the scheme absent, the engine's loads + stores equal the
// hierarchy's L1D accesses exactly, which is what makes the SP access-count
// cross-checks exact rather than approximate.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cpu/timing_model.h"
#include "ir/program.h"
#include "memsys/hierarchy.h"

namespace selcache::locality {

struct EntityCounts {
  std::uint64_t accesses = 0;
  std::uint64_t l1d_misses = 0;
};

/// Per-entity and total L1D/L2 behavior of one simulated run.
struct MeasuredProfile {
  /// Keyed by the same entity names predictions use: array name, pool name,
  /// "(scalars)" for the packed scalar block.
  std::map<std::string, EntityCounts> entities;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_accesses = 0;  ///< includes the instruction side
  std::uint64_t l2_misses = 0;
  /// Data accesses whose address fell outside every known entity (always 0
  /// unless the data environment changes shape under us — SP-COVERAGE
  /// treats any nonzero value as an error).
  std::uint64_t unattributed = 0;
  Cycle cycles = 0;

  double l1d_miss_ratio() const {
    return l1d_accesses == 0
               ? 0.0
               : static_cast<double>(l1d_misses) / l1d_accesses;
  }
};

struct MeasureOptions {
  memsys::HierarchyConfig hierarchy{};
  cpu::CpuConfig cpu{};
  std::uint64_t data_seed = 0x5e1c4c4eULL;
};

/// Execute `p` once on a scheme-less machine and collect the profile.
MeasuredProfile measure_program(const ir::Program& p,
                                const MeasureOptions& opt = {});

}  // namespace selcache::locality
