#include "locality/analyzer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/check.h"

namespace selcache::locality {
namespace {

/// One cache level's knobs for the footprint-vs-capacity test.
struct Geometry {
  double capacity = 0.0;  ///< effective bytes (capacity_fraction applied)
  double block = 1.0;
};

/// Byte stride of each array dimension, replicating codegen::ArrayLayout
/// (layout.cpp): row-major puts the fastest dim last, padding extends the
/// fastest dim's extent. locality_test cross-checks this against the real
/// layout so the two cannot drift silently.
std::vector<std::int64_t> layout_strides_bytes(const ir::ArrayDecl& d) {
  std::vector<std::int64_t> s(d.dims.size(), 1);
  std::int64_t stride = 1;
  if (d.layout == ir::Layout::RowMajor) {
    for (std::size_t i = d.dims.size(); i-- > 0;) {
      s[i] = stride;
      stride *= d.dims[i] + (i + 1 == d.dims.size() ? d.pad_elems : 0);
    }
  } else {
    for (std::size_t i = 0; i < d.dims.size(); ++i) {
      s[i] = stride;
      stride *= d.dims[i] + (i == 0 ? d.pad_elems : 0);
    }
  }
  for (auto& v : s) v *= static_cast<std::int64_t>(d.elem_size);
  return s;
}

constexpr int kEntityArray = 0;
constexpr int kEntityScalars = 1;
constexpr int kEntityPool = 2;

/// Raw facts about one prediction entry, kept alongside RefPrediction for
/// the grouping / footprint / miss passes. Vectors parallel `chain`.
struct RefFacts {
  std::size_t pred = 0;  ///< index into ProgramPrediction::refs
  std::vector<const ir::LoopNode*> chain;  ///< outermost -> innermost
  std::vector<double> trips;
  std::vector<std::int64_t> adv;  ///< bytes advanced per iteration
  bool affine = false;            ///< adv/const_offset are meaningful
  std::int64_t const_offset = 0;
  int entity_kind = kEntityArray;
  std::uint32_t entity_id = 0;
  double entity_bytes = 0.0;
  bool follower = false;
  std::int64_t follower_delta = 0;
  /// Cross-iteration follower: this reference touches the line some group
  /// leader fetched `xfollow_k` iterations earlier along chain level
  /// `xfollow_level` (a stencil neighbor such as y[i-1][j] behind y[i][j]).
  /// Whether that reuse is realized depends on capacity, so it is decided
  /// in the estimate phase, not here.
  int xfollow_level = -1;
  std::int64_t xfollow_k = 0;
};

/// Stencil neighbors further apart than this many iterations of the reused
/// loop level are treated as independent leaders. Real stencils in the
/// suite span at most +/-2; larger distances rarely survive the capacity
/// test anyway.
constexpr std::int64_t kMaxGroupIterDistance = 8;

struct LoopRec {
  const ir::LoopNode* loop = nullptr;
  std::string location;
  double trip = 0.0;
};

double line_factor(double trip, double d, double block) {
  if (d == 0.0) return 1.0;
  if (d < block) return std::max(1.0, trip * d / block);
  return trip;
}

/// Distinct cache lines a reference touches over the loop levels strictly
/// inside position `k` of its chain (k == chain size - 1 or an empty chain
/// means a single access: one line).
double lines_inside(const RefFacts& f, std::size_t k, const Geometry& g) {
  const double entity_lines = std::max(1.0, f.entity_bytes / g.block);
  double lines = 1.0;
  for (std::size_t j = f.chain.size(); j-- > k + 1;) {
    if (f.trips[j] <= 0.0) return 0.0;
    lines *= f.affine
                 ? line_factor(f.trips[j],
                               std::abs(static_cast<double>(f.adv[j])), g.block)
                 : f.trips[j];
  }
  return std::min(lines, entity_lines);
}

class Walker {
 public:
  Walker(const ir::Program& p, const LocalityOptions& opt) : p_(p), opt_(opt) {
    out_.program = p.name();
    midvals_.assign(p.var_names().size(), 0);
    array_strides_.reserve(p.arrays().size());
    for (const auto& a : p.arrays())
      array_strides_.push_back(layout_strides_bytes(a));
  }

  ProgramPrediction run() {
    walk(p_.top());
    group_refs();
    const Geometry g1{opt_.capacity_fraction * opt_.l1.size_bytes,
                      static_cast<double>(opt_.l1.block_size)};
    const Geometry g2{opt_.capacity_fraction * opt_.l2.size_bytes,
                      static_cast<double>(opt_.l2.block_size)};
    const auto b1 = loop_footprints(g1);
    const auto b2 = loop_footprints(g2);
    estimate_all(g1, g2, b1, b2);
    aggregate(b1);
    return std::move(out_);
  }

 private:
  // ---- tree walk ---------------------------------------------------------

  void walk(const std::vector<std::unique_ptr<ir::Node>>& body) {
    for (const auto& n : body) {
      switch (n->kind) {
        case ir::NodeKind::Loop:
          enter_loop(static_cast<const ir::LoopNode&>(*n));
          break;
        case ir::NodeKind::Stmt:
          visit_stmt(static_cast<const ir::StmtNode&>(*n).stmt);
          break;
        case ir::NodeKind::Toggle:
          break;  // markers touch no data
      }
    }
  }

  void enter_loop(const ir::LoopNode& loop) {
    const ir::AffineExpr diff = loop.upper - loop.lower;
    double trip = 0.0;
    bool exact = true;
    if (diff.is_constant()) {
      const std::int64_t c = diff.constant_term();
      trip = c <= 0 ? 0.0
                    : static_cast<double>((c + loop.step - 1) / loop.step);
    } else {
      // Triangular / skewed bounds: estimate the trip count at the midpoint
      // of every enclosing loop and say so (trip_exact = false downstream).
      const std::int64_t c = diff.eval(midvals_);
      trip = c <= 0 ? 0.0
                    : static_cast<double>((c + loop.step - 1) / loop.step);
      exact = false;
    }
    const std::int64_t lo = loop.lower.eval(midvals_);
    const auto it = static_cast<std::int64_t>(trip);
    midvals_[loop.var] = lo + (it > 0 ? ((it - 1) / 2) * loop.step : 0);

    std::vector<std::int64_t> deriv(stack_.size(), 0);
    for (std::size_t k = 0; k < stack_.size(); ++k) {
      deriv[k] = loop.lower.coeff(stack_[k].loop->var);
      for (std::size_t m = k + 1; m < stack_.size(); ++m)
        deriv[k] += loop.lower.coeff(stack_[m].loop->var) *
                    stack_[m].deriv[k];
    }
    path_.push_back("loop " + p_.var_names()[loop.var]);
    stack_.push_back({&loop, trip, exact, loop.step, std::move(deriv)});
    loops_.push_back({&loop, join_path(), trip});
    walk(loop.body);
    stack_.pop_back();
    path_.pop_back();
  }

  struct LevelCtx {
    const ir::LoopNode* loop;
    double trip;
    bool exact;
    std::int64_t step;
    /// d(this loop's var) / d(enclosing var k), per unit of var k, chained
    /// through lower bounds. Tiled point loops (ip = ipt*T .. ipt*T+T) carry
    /// no tile var in their subscripts; the advance per tile iteration lives
    /// entirely in this bound coupling.
    std::vector<std::int64_t> deriv;
  };

  void visit_stmt(const ir::Stmt& stmt) {
    path_.push_back(stmt.label.empty() ? "stmt" : "stmt '" + stmt.label + "'");
    for (const auto& r : stmt.refs) visit_ref(r);
    path_.pop_back();
  }

  void visit_ref(const ir::Reference& r) {
    std::visit(
        [&](const auto& t) {
          using T = std::decay_t<decltype(t)>;
          if constexpr (std::is_same_v<T, ir::Reference::Scalar>) {
            emit_scalar(t.id, r.is_write);
          } else if constexpr (std::is_same_v<T, ir::Reference::Array>) {
            for (const auto& s : t.subs) emit_index_load(s);
            emit_array(t, r.is_write);
          } else if constexpr (std::is_same_v<T, ir::Reference::Pointer>) {
            emit_irregular(kEntityPool, t.pool, "*" + p_.pool(t.pool).name,
                           pool_bytes(t.pool), "pointer chase", r.is_write);
          } else {  // Field
            emit_index_load(t.element);
            emit_irregular(kEntityPool, t.pool,
                           p_.pool(t.pool).name + "[" +
                               subscript_str(t.element) + "]",
                           pool_bytes(t.pool), "record field", r.is_write);
          }
        },
        r.target);
  }

  /// The trace engine loads index_array[pos] before any access whose
  /// subscript is Indexed; mirror that load with its own (affine,
  /// analyzable) prediction entry so access totals can match exactly.
  void emit_index_load(const ir::Subscript& s) {
    if (!s.is_indexed()) return;
    const auto& sub = std::get<ir::Subscript::Indexed>(s.value);
    ir::Reference::Array synthetic{sub.index_array,
                                   {ir::Subscript::affine(sub.index)}};
    emit_array(synthetic, /*is_write=*/false);
  }

  void emit_scalar(ir::ScalarId id, bool is_write) {
    RefPrediction pred = base_pred(p_.scalar(id).name, "(scalars)", is_write);
    RefFacts f = base_facts(kEntityScalars, 0);
    // Scalars pack at 8-byte spacing in one block of the data environment;
    // the whole set is one entity with stride 0 at every level.
    f.affine = true;
    f.adv.assign(f.chain.size(), 0);
    f.const_offset = static_cast<std::int64_t>(id) * 8;
    f.entity_bytes = static_cast<double>(p_.scalars().size()) * 8.0;
    finish(std::move(pred), std::move(f));
  }

  void emit_array(const ir::Reference::Array& t, bool is_write) {
    const auto& decl = p_.array(t.id);
    std::string rendered = decl.name;
    const char* reason = nullptr;
    for (const auto& s : t.subs) {
      rendered += "[" + subscript_str(s) + "]";
      if (s.is_affine()) continue;
      if (std::holds_alternative<ir::Subscript::Product>(s.value))
        reason = "product subscript";
      else if (std::holds_alternative<ir::Subscript::Divide>(s.value))
        reason = "quotient subscript";
      else
        reason = "subscripted subscript";
    }
    RefPrediction pred = base_pred(rendered, decl.name, is_write);
    RefFacts f = base_facts(kEntityArray, t.id);
    f.entity_bytes = static_cast<double>(decl.footprint_bytes());
    if (reason != nullptr) {
      pred.verdict = Verdict::NonAnalyzable;
      pred.reason = reason;
      finish(std::move(pred), std::move(f));
      return;
    }
    const auto& strides = array_strides_[t.id];
    SELCACHE_CHECK(strides.size() == t.subs.size());
    f.affine = true;
    f.adv.assign(f.chain.size(), 0);
    for (std::size_t d = 0; d < t.subs.size(); ++d) {
      const auto& e = std::get<ir::Subscript::Affine>(t.subs[d].value).expr;
      f.const_offset += e.constant_term() * strides[d];
      for (std::size_t k = 0; k < f.chain.size(); ++k) {
        // Effective coefficient: direct use of var k plus inner loop vars
        // whose bounds shift with var k (tiled point loops).
        std::int64_t c = e.coeff(f.chain[k]->var);
        for (std::size_t j = k + 1; j < f.chain.size(); ++j)
          c += e.coeff(f.chain[j]->var) * stack_[j].deriv[k];
        f.adv[k] += c * strides[d] * stack_[k].step;
      }
    }
    finish(std::move(pred), std::move(f));
  }

  void emit_irregular(int kind, std::uint32_t id, std::string rendered,
                      double entity_bytes, const char* reason, bool is_write) {
    RefPrediction pred =
        base_pred(std::move(rendered), p_.pool(id).name, is_write);
    pred.verdict = Verdict::NonAnalyzable;
    pred.reason = reason;
    RefFacts f = base_facts(kind, id);
    f.entity_bytes = entity_bytes;
    finish(std::move(pred), std::move(f));
  }

  RefPrediction base_pred(std::string rendered, std::string entity,
                          bool is_write) {
    RefPrediction pred;
    pred.location = join_path();
    pred.ref = std::move(rendered);
    pred.entity = std::move(entity);
    pred.is_write = is_write;
    pred.accesses = 1.0;
    for (const auto& l : stack_) {
      pred.levels.push_back({p_.var_names()[l.loop->var], l.trip, l.exact, 0,
                             Reuse::None});
      pred.accesses *= l.trip;
      pred.accesses_exact = pred.accesses_exact && l.exact;
    }
    return pred;
  }

  RefFacts base_facts(int kind, std::uint32_t id) {
    RefFacts f;
    f.pred = out_.refs.size();
    f.entity_kind = kind;
    f.entity_id = id;
    for (const auto& l : stack_) {
      f.chain.push_back(l.loop);
      f.trips.push_back(l.trip);
    }
    return f;
  }

  void finish(RefPrediction pred, RefFacts f) {
    out_.refs.push_back(std::move(pred));
    facts_.push_back(std::move(f));
  }

  double pool_bytes(ir::PoolId id) const {
    const auto& pd = p_.pool(id);
    return static_cast<double>(pd.count) * pd.elem_size;
  }

  std::string subscript_str(const ir::Subscript& s) const {
    return std::visit(
        [&](const auto& sub) -> std::string {
          using T = std::decay_t<decltype(sub)>;
          const auto names = std::span<const std::string>(p_.var_names());
          if constexpr (std::is_same_v<T, ir::Subscript::Affine>) {
            return sub.expr.str(names);
          } else if constexpr (std::is_same_v<T, ir::Subscript::Product>) {
            return "(" + sub.lhs.str(names) + ")*(" + sub.rhs.str(names) + ")";
          } else if constexpr (std::is_same_v<T, ir::Subscript::Divide>) {
            return "(" + sub.lhs.str(names) + ")/(" + sub.rhs.str(names) + ")";
          } else {
            std::string r =
                p_.array(sub.index_array).name + "[" + sub.index.str(names) +
                "]";
            if (sub.offset != 0) r += "+" + std::to_string(sub.offset);
            return r;
          }
        },
        s.value);
  }

  std::string join_path() const {
    std::string out;
    for (const auto& c : path_) {
      if (!out.empty()) out += "/";
      out += c;
    }
    return out;
  }

  // ---- group reuse -------------------------------------------------------

  /// References to the same entity, under the same loop chain, with the
  /// same per-level advance, sorted by constant byte offset: the leader
  /// (lowest offset) pays the misses; anything within one L1 block of the
  /// previous member rides along (GroupTemporal when the offset is
  /// identical, GroupSpatial otherwise).
  void group_refs() {
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < facts_.size(); ++i) {
      const auto& f = facts_[i];
      if (!f.affine) continue;
      std::ostringstream key;
      key << f.entity_kind << ":" << f.entity_id;
      for (const auto* l : f.chain) key << "|" << l;
      for (auto a : f.adv) key << "," << a;
      groups[key.str()].push_back(i);
    }
    const auto block = static_cast<std::int64_t>(opt_.l1.block_size);
    for (auto& [key, members] : groups) {
      std::stable_sort(members.begin(), members.end(),
                       [&](std::size_t a, std::size_t b) {
                         return facts_[a].const_offset <
                                facts_[b].const_offset;
                       });
      for (std::size_t m = 1; m < members.size(); ++m) {
        auto& f = facts_[members[m]];
        const auto& prev = facts_[members[m - 1]];
        const std::int64_t delta = f.const_offset - prev.const_offset;
        if (delta >= block) {
          mark_cross_iteration(members[m - 1], members[m], delta, block);
          continue;  // not in the leader's block: separate first touch
        }
        f.follower = true;
        f.follower_delta = delta;
        auto& pred = out_.refs[f.pred];
        if (!pred.levels.empty())
          pred.levels.back().reuse =
              delta == 0 ? Reuse::GroupTemporal : Reuse::GroupSpatial;
      }
    }
  }

  /// Group members whose offsets differ by a whole number of iterations'
  /// advance along some loop level reuse each other's lines one or more
  /// iterations apart (stencil rows: y[i-1][j] touches the row y[i][j]
  /// fetched on the previous i iteration). The member that touches a given
  /// address *later* is the follower; whichever member leads, the reuse
  /// only pays off if the lines survive `k` iterations, so the estimate
  /// phase re-tests it against capacity.
  void mark_cross_iteration(std::size_t lo_idx, std::size_t hi_idx,
                            std::int64_t delta, std::int64_t block) {
    const auto& any = facts_[lo_idx];  // lo/hi share chain and adv
    for (std::size_t j = any.chain.size(); j-- > 0;) {
      const std::int64_t a = any.adv[j];
      if (a == 0) continue;
      const std::int64_t mag = std::abs(a);
      const std::int64_t k = (delta + mag / 2) / mag;  // nearest multiple
      if (k < 1 || k > kMaxGroupIterDistance) continue;
      if (std::abs(delta - k * mag) >= block) continue;
      // Addresses equal when iteration difference is delta/a: with a > 0
      // the lower-offset member lags (touches shared lines later).
      auto& foll = facts_[a > 0 ? lo_idx : hi_idx];
      if (foll.follower || foll.xfollow_level >= 0) return;
      foll.xfollow_level = static_cast<int>(j);
      foll.xfollow_k = k;
      auto& pred = out_.refs[foll.pred];
      pred.levels[j].reuse =
          delta == k * mag ? Reuse::GroupTemporal : Reuse::GroupSpatial;
      return;
    }
  }

  // ---- footprints & misses ----------------------------------------------

  /// One-iteration footprint of every loop: the distinct bytes all
  /// references in its subtree touch during a single iteration. Group
  /// followers contribute nothing (their leader already counted the lines);
  /// irregular references contribute their trip product capped at the
  /// entity size.
  std::map<const ir::LoopNode*, double> loop_footprints(
      const Geometry& g) const {
    std::map<const ir::LoopNode*, double> out;
    for (const auto& lr : loops_) out[lr.loop] = 0.0;
    for (const auto& f : facts_) {
      // Cross-iteration followers are excluded too: over a whole loop their
      // line set is the leader's shifted by k iterations, near-total overlap.
      if (f.follower || f.xfollow_level >= 0) continue;
      for (std::size_t k = 0; k < f.chain.size(); ++k)
        out[f.chain[k]] += lines_inside(f, k, g) * g.block;
    }
    return out;
  }

  /// Per-reference miss estimate for one cache level: walk the chain
  /// innermost to outermost multiplying per-level factors. A level's reuse
  /// is realized when the loop's one-iteration footprint fits the effective
  /// capacity; realized temporal reuse keeps the line warm (dense accesses)
  /// so every outer level is free.
  std::optional<double> estimate(const RefFacts& f, const Geometry& g,
                                 const std::map<const ir::LoopNode*, double>& b,
                                 double accesses) const {
    double misses = 1.0;
    bool warm = false;
    for (std::size_t j = f.chain.size(); j-- > 0;) {
      const double t = f.trips[j];
      if (t <= 0.0) return 0.0;
      const double d = std::abs(static_cast<double>(f.adv[j]));
      const double fp = b.at(f.chain[j]);
      if (d == 0.0) {
        const bool realized = warm || fp <= g.capacity;
        misses *= realized ? 1.0 : t;
        warm = realized;
      } else if (d < g.block) {
        const bool realized = warm || fp <= g.capacity;
        misses *= realized ? std::max(1.0, t * d / g.block) : t;
        warm = false;
      } else {
        misses *= t;
        warm = false;
      }
    }
    return std::min(misses, accesses);
  }

  /// Miss estimate honoring a cross-iteration follower marking: realized
  /// when the k iterations separating follower from leader fit in cache,
  /// leaving only the cold lead-in (the first k iterations of the reused
  /// level, where no leader data exists yet). Falls back to the plain
  /// leader estimate otherwise.
  std::optional<double> xfollow_estimate(
      const RefFacts& f, const Geometry& g,
      const std::map<const ir::LoopNode*, double>& b, double accesses) const {
    const std::optional<double> full = estimate(f, g, b, accesses);
    if (f.xfollow_level < 0) return full;
    const auto lvl = static_cast<std::size_t>(f.xfollow_level);
    const double trip = f.trips[lvl];
    const double k = static_cast<double>(f.xfollow_k);
    const bool realized = k * b.at(f.chain[lvl]) <= g.capacity;
    if (!realized || !full) return full;
    return *full * std::min(1.0, trip > 0.0 ? k / trip : 1.0);
  }

  void estimate_all(const Geometry& g1, const Geometry& g2,
                    const std::map<const ir::LoopNode*, double>& b1,
                    const std::map<const ir::LoopNode*, double>& b2) {
    for (auto& f : facts_) {
      auto& pred = out_.refs[f.pred];
      if (!f.affine) continue;  // non-analyzable: no miss estimate
      // Reuse labels + reuse distance from the L1 geometry.
      for (std::size_t j = 0; j < f.chain.size(); ++j) {
        const double d = std::abs(static_cast<double>(f.adv[j]));
        pred.levels[j].stride_bytes = f.adv[j];
        if (pred.levels[j].reuse == Reuse::None)
          pred.levels[j].reuse = d == 0.0          ? Reuse::SelfTemporal
                                 : d < g1.block    ? Reuse::SelfSpatial
                                                   : Reuse::None;
      }
      for (std::size_t j = f.chain.size(); j-- > 0;) {
        const double d = std::abs(static_cast<double>(f.adv[j]));
        if (d < g1.block) {
          pred.reuse_distance_bytes = b1.at(f.chain[j]);
          break;
        }
      }
      if (f.follower) {
        pred.l1_misses = 0.0;
        pred.l2_misses = 0.0;
        continue;
      }
      pred.l1_misses = xfollow_estimate(f, g1, b1, pred.accesses);
      pred.l2_misses = xfollow_estimate(f, g2, b2, pred.accesses);
    }
  }

  // ---- aggregation -------------------------------------------------------

  void aggregate(const std::map<const ir::LoopNode*, double>& b1) {
    std::map<std::string, EntityPrediction> entities;
    for (std::size_t i = 0; i < out_.refs.size(); ++i) {
      const auto& pred = out_.refs[i];
      auto& e = entities[pred.entity];
      e.entity = pred.entity;
      e.accesses += pred.accesses;
      e.accesses_exact = e.accesses_exact && pred.accesses_exact;
      out_.total_accesses += pred.accesses;
      out_.total_accesses_exact =
          out_.total_accesses_exact && pred.accesses_exact;
      if (pred.verdict == Verdict::Analyzable) {
        e.analyzable_accesses += pred.accesses;
        out_.analyzable_accesses += pred.accesses;
        e.l1_misses = e.l1_misses.value_or(0.0) + *pred.l1_misses;
        e.l2_misses = e.l2_misses.value_or(0.0) + *pred.l2_misses;
        out_.l1_misses = out_.l1_misses.value_or(0.0) + *pred.l1_misses;
        out_.l2_misses = out_.l2_misses.value_or(0.0) + *pred.l2_misses;
      }
    }
    // An entity with any non-analyzable reference has no usable miss total.
    for (auto& [name, e] : entities)
      if (e.analyzable_accesses < e.accesses) {
        e.l1_misses.reset();
        e.l2_misses.reset();
      }
    for (auto& [name, e] : entities) out_.entities.push_back(std::move(e));

    for (const auto& lr : loops_) {
      LoopPrediction lp;
      lp.location = lr.location;
      lp.trip = lr.trip;
      lp.one_iteration_footprint_bytes = b1.at(lr.loop);
      for (std::size_t i = 0; i < facts_.size(); ++i) {
        const auto& f = facts_[i];
        if (std::find(f.chain.begin(), f.chain.end(), lr.loop) ==
            f.chain.end())
          continue;
        const auto& pred = out_.refs[f.pred];
        lp.accesses += pred.accesses;
        if (pred.verdict == Verdict::Analyzable) {
          lp.analyzable_accesses += pred.accesses;
          lp.l1_misses = lp.l1_misses.value_or(0.0) + *pred.l1_misses;
        }
      }
      out_.loops.emplace(lr.loop, std::move(lp));
    }
  }

  const ir::Program& p_;
  const LocalityOptions& opt_;
  ProgramPrediction out_;
  std::vector<RefFacts> facts_;
  std::vector<LevelCtx> stack_;
  std::vector<LoopRec> loops_;
  std::vector<std::string> path_;
  std::vector<std::int64_t> midvals_;
  std::vector<std::vector<std::int64_t>> array_strides_;
};

}  // namespace

ProgramPrediction predict(const ir::Program& p, const LocalityOptions& opt) {
  return Walker(p, opt).run();
}

std::vector<Verdict> ref_verdicts(const ir::Program& p) {
  // Correct by construction: the same walk predict() uses, verdicts only.
  // The analyzer runs in microseconds, so re-walking is cheap.
  ProgramPrediction pred = predict(p, LocalityOptions{});
  std::vector<Verdict> out;
  out.reserve(pred.refs.size());
  for (const auto& r : pred.refs) out.push_back(r.verdict);
  return out;
}

}  // namespace selcache::locality
