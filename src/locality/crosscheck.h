// SP-* diagnostic pass: cross-check a static locality prediction against
// the measured profile of a real simulated run. A standing lint with two
// blades — a wrong prediction flags an analyzer bug, an unexplained shift
// in the measured counts flags a simulator regression.
//
// Rule taxonomy (stable IDs, documented in DESIGN.md):
//   SP-SANITY         prediction is internally inconsistent (misses out of
//                     [0, accesses], totals that do not add up)
//   SP-VERDICT        a reference's analyzability verdict disagrees with a
//                     fresh geometry-independent re-derivation from the IR
//   SP-ACCESS         program-level access count off (exact counts must
//                     match to the unit; estimated counts get rel_tol)
//   SP-ACCESS-ENTITY  per-entity access count off (same exact/estimated
//                     split)
//   SP-COVERAGE       entity observed in the run but absent/empty in the
//                     prediction, vice versa, or unattributed accesses
//   SP-MISS           program-level L1D miss-ratio error beyond tolerance
//                     (only when the program verdict is Analyzable and trip
//                     counts are exact)
//   SP-MISS-ENTITY    per-entity L1D miss count beyond tolerance for a
//                     fully analyzable entity with enough traffic to judge
#pragma once

#include "locality/analyzer.h"
#include "locality/measure.h"
#include "verify/diagnostics.h"

namespace selcache::locality {

struct CrosscheckOptions {
  /// Relative tolerance for access counts that are estimates (trip counts
  /// from midpoint approximation). Exact counts must match exactly.
  double access_rel_tol = 0.10;
  /// Program-level absolute miss-ratio tolerance (predicted vs measured
  /// L1D miss ratio, both over data accesses).
  double miss_ratio_abs_tol = 0.15;
  /// Per-entity miss-count tolerance: flagged only when both the relative
  /// error exceeds this and the absolute error exceeds the floor (tiny
  /// entities drown in boundary effects).
  double entity_miss_rel_tol = 0.75;
  double entity_miss_abs_floor = 8192.0;
  /// Analyzable-access fraction below which miss rules are skipped.
  double coverage_floor = 0.99;
};

/// Append SP-* diagnostics comparing `pred` to `meas` (a run of the same
/// program on the geometry the prediction targeted). Returns the number of
/// diagnostics added. `report`'s pass label is set to "locality".
std::size_t crosscheck(const ir::Program& p, const ProgramPrediction& pred,
                       const MeasuredProfile& meas, verify::Report& report,
                       const CrosscheckOptions& opt = {});

}  // namespace selcache::locality
