// Trace tapes: a compact, versioned encoding of the dynamic instruction /
// memory stream one simulation denotes.
//
// The stream a (workload, version) pair drives through cpu::TimingModel is
// a pure function of the program product and the data seed — it does not
// depend on the machine configuration (cache geometry only changes how the
// hierarchy *responds* to the stream, and I-fetch block expansion happens
// inside the timing model at replay time). Machine-parameter sweeps can
// therefore record the stream once and replay it for every machine point,
// skipping program construction, the optimization pipeline, DataEnv
// initialization, and all IR interpretation on every point but the first.
//
// ## Format (kTapeVersion = 2)
//
// The tape is a flat byte stream of operation records. Each record is one
// opcode byte followed by zero or more LEB128 varint operands:
//
//   opcode byte:  bits 0..2  operation (Op below)
//                 bit  3     flag: Load = address-dependent (pointer chase),
//                            Branch = taken, Toggle = activate; 0 otherwise
//                 bits 4..7  inline operand nibble (0..14); 15 = the
//                            operand overflowed and follows as a varint
//
//   Load/Store   operand = zigzag(addr - prev_data_addr); data addresses
//                delta-chain through loads and stores together
//   Ifetch       operand = zigzag(pc - prev_code_addr), then a second
//                operand (nibble/varint) = instruction count; code
//                addresses delta-chain through I-fetches and branches
//   Branch       operand = zigzag(pc - prev_code_addr)
//   Compute      operand = plain instruction count (not zigzagged)
//   Toggle       operand = source region id + 1 (0 = unattributed)
//   Loop         a loop run — see below
//
// ## Loop runs (new in version 2)
//
// The stream is emitted by IR loops, so it is overwhelmingly *periodic*:
// the same short op sequence repeats with each memory operand advancing by
// a constant stride per iteration. The builder detects this online — a
// taken branch to the same pc at the same op distance is a loop back-edge,
// and two consecutive iterations with identical shapes and constant
// per-slot address deltas arm a run — and emits one Loop record in place
// of m whole iterations:
//
//   Loop     nibble/varint = body length p (ops per iteration, 1..128),
//            then varint repetitions m, then p slot records:
//              slot opcode byte (op | flag | value nibble, value escaping
//              to a varint exactly like a plain record), and for the
//              address-carrying ops (Load/Store/Ifetch/Branch) a raw
//              varint first-iteration address followed by a zigzag varint
//              per-iteration stride.
//
// Replay expands the run in stream order: iteration k issues slot j at
// address addr0_j + k * stride_j, so the expanded op sequence is exactly
// the recorded one and the delta chains continue from the final iteration.
// A Loop record costs ~10 bytes per body slot *once*, so a few hundred
// iterations of a 10-op body cost ~0.03 bytes per op — and the replay loop
// runs addr += stride with a perfectly repeating dispatch pattern, far
// under the varint-decode cost of the plain encoding. Streams without
// back-edges (or with shape-changing iterations) fall back to plain
// records: address operands skip the inline nibble (deltas are rarely < 15
// after zigzag), count-style operands usually fit it. Plain tapes cost
// ~2-6 bytes per recorded data access against 16 bytes per event for the
// flat cpu::Trace capture; looped tapes are typically 50-100x denser.
//
// The recorded events are exactly the pre-expansion calls the trace engine
// makes on cpu::TimingModel (an Ifetch record is one touch_code() call, not
// one per I-cache block), so replaying a tape into a machine with any block
// size reproduces that machine's interpreted run bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/check.h"
#include "support/io.h"
#include "support/types.h"

namespace selcache::tape {

inline constexpr std::uint8_t kTapeVersion = 2;

/// Longest loop body (ops per iteration) a Loop record may carry. Bounds
/// the replayer's stack allocation and the builder's pending window.
inline constexpr std::uint32_t kMaxLoopBody = 128;

/// Fewest repetitions worth a Loop record; shorter runs flush as plain
/// records (a run of 2-3 iterations costs more as a template than inline).
inline constexpr std::uint64_t kMinLoopReps = 4;

/// Operation code of one tape record (bits 0..2 of the opcode byte).
enum class Op : std::uint8_t {
  Load = 0,
  Store = 1,
  Ifetch = 2,
  Branch = 3,
  Compute = 4,
  Toggle = 5,
  Loop = 6,
};

/// Per-kind record counts, tracked at build time so tape consumers can
/// report density without decoding. Loop records count their expanded
/// operations (a tape's stats are a property of the stream, not of the
/// encoding that carries it).
struct TapeStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t ifetch_batches = 0;
  std::uint64_t branches = 0;
  std::uint64_t computes = 0;
  std::uint64_t toggles = 0;

  std::uint64_t ops() const {
    return loads + stores + ifetch_batches + branches + computes + toggles;
  }
  /// Recorded demand data accesses (loads + stores) — the denominator for
  /// bytes-per-access density. I-fetch expansion is machine-dependent and
  /// happens at replay time, so it is deliberately not counted here.
  std::uint64_t data_accesses() const { return loads + stores; }

  bool operator==(const TapeStats&) const = default;
};

/// One recorded instruction/memory stream.
struct Tape {
  std::uint8_t version = kTapeVersion;
  TapeStats stats;
  std::vector<std::uint8_t> bytes;

  std::uint64_t size_bytes() const { return bytes.size(); }
  double bytes_per_access() const {
    return stats.data_accesses() == 0
               ? 0.0
               : static_cast<double>(bytes.size()) /
                     static_cast<double>(stats.data_accesses());
  }

  bool operator==(const Tape&) const = default;
};

// -- varint / zigzag primitives ---------------------------------------------

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decode one varint from [p, end). Advances *p past the encoding; throws
/// std::logic_error (via SELCACHE_CHECK) on truncation or a >64-bit value.
inline std::uint64_t get_varint(const std::uint8_t** p,
                                const std::uint8_t* end) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    SELCACHE_CHECK_MSG(*p < end, "truncated tape varint");
    const std::uint8_t b = *(*p)++;
    SELCACHE_CHECK_MSG(shift < 64, "overlong tape varint");
    // The 10th byte holds only bit 63: any higher payload bit would be
    // shifted out silently, decoding a >64-bit value to a wrapped uint64.
    // That is corruption, not data (the encoder never emits it).
    SELCACHE_CHECK_MSG(shift < 63 || (b & 0x7E) == 0,
                       "overflowing tape varint");
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// -- streaming encoder -------------------------------------------------------

/// Streaming tape encoder: buffers a short window of decoded operations,
/// detects loop runs at taken back-edge branches, and emits Loop records
/// for them (plain delta/varint records otherwise). The emitted byte
/// stream always decodes to exactly the recorded op sequence — the run
/// detector changes the carrier, never the stream. One builder records one
/// simulation.
class TapeBuilder {
 public:
  void load(Addr addr, bool dependent) {
    push({Op::Load, dependent, 0, addr});
    ++tape_.stats.loads;
  }

  void store(Addr addr) {
    push({Op::Store, false, 0, addr});
    ++tape_.stats.stores;
  }

  void ifetch(Addr pc, std::uint32_t n_instr) {
    push({Op::Ifetch, false, n_instr, pc});
    ++tape_.stats.ifetch_batches;
  }

  void branch(Addr pc, bool taken) {
    push({Op::Branch, taken, 0, pc});
    ++tape_.stats.branches;
  }

  void compute(std::uint64_t n) {
    push({Op::Compute, false, n, 0});
    ++tape_.stats.computes;
  }

  void toggle(bool on, std::int32_t region) {
    // region + 1 so the unattributed marker (-1) encodes as 0, mirroring
    // cpu::TraceEvent's convention.
    push({Op::Toggle, on,
          static_cast<std::uint64_t>(static_cast<std::int64_t>(region) + 1),
          0});
    ++tape_.stats.toggles;
  }

  /// Finalize and take the tape. The builder is spent afterwards.
  Tape take() {
    finish();
    return std::move(tape_);
  }

 private:
  /// One recorded operation in decoded (absolute-address) form.
  struct RawOp {
    Op op;
    bool flag;
    std::uint64_t val;  ///< Ifetch count / Compute count / Toggle region+1
    Addr addr;          ///< Load/Store/Ifetch/Branch operand

    bool has_addr() const { return op <= Op::Branch; }
    /// Shape equality: everything but the address.
    bool same_shape(const RawOp& o) const {
      return op == o.op && flag == o.flag && val == o.val;
    }
  };

  void push(const RawOp& r) {
    if (in_run_) {
      extend_run(r);
      return;
    }
    pend_.push_back(r);
    ++n_ops_;
    if (r.op == Op::Branch && r.flag) on_back_edge(r);
    // Bound the pending window; chunked so the vector erase amortizes.
    if (pend_.size() > 2 * kMaxLoopBody + 64) flush_pending(64);
  }

  /// A taken branch arrived (always the last element of pend_). If it
  /// revisits a back-edge pc at the same op distance and the last two
  /// candidate iterations agree op-for-op with constant address strides,
  /// open a run. Tracking is per-pc so a consistently-taken branch inside
  /// the body does not mask the latch.
  void on_back_edge(const RawOp& r) {
    const std::uint64_t idx = n_ops_ - 1;
    const auto it = be_last_.find(r.addr);
    const bool candidate = it != be_last_.end() && idx > it->second;
    const std::uint64_t body = candidate ? idx - it->second : 0;
    be_last_[r.addr] = idx;
    if (!candidate || body > kMaxLoopBody || pend_.size() < 2 * body) return;

    const std::size_t sz = pend_.size();
    const RawOp* a = &pend_[sz - 2 * body];  // previous iteration
    const RawOp* b = &pend_[sz - body];      // just-finished iteration
    for (std::size_t j = 0; j < body; ++j)
      if (!a[j].same_shape(b[j])) return;

    // Two matching iterations: everything older flushes plain, iteration
    // `a` becomes the template (strides b-a), and both are absorbed.
    tmpl_.assign(a, a + body);
    stride_.resize(body);
    for (std::size_t j = 0; j < body; ++j)
      stride_[j] = static_cast<std::int64_t>(b[j].addr - a[j].addr);
    flush_pending(sz - 2 * body);
    pend_.clear();
    in_run_ = true;
    reps_ = 2;
    slot_ = 0;
    be_last_.clear();  // arrival indices across the run are meaningless
  }

  /// Run mode: the next op must continue the arithmetic sequence.
  void extend_run(const RawOp& r) {
    const RawOp& t = tmpl_[slot_];
    const Addr want =
        t.addr + reps_ * static_cast<Addr>(stride_[slot_]);
    if (r.same_shape(t) && (!t.has_addr() || r.addr == want)) {
      if (++slot_ == tmpl_.size()) {
        ++reps_;
        slot_ = 0;
      }
      return;
    }
    end_run();
    push(r);
  }

  /// Close the open run: emit it (Loop record, or plain ops when too
  /// short), then re-queue the matched slots of the incomplete iteration
  /// as fresh arrivals so detection can re-arm on them.
  void end_run() {
    in_run_ = false;
    const std::size_t partial = slot_;
    if (reps_ >= kMinLoopReps) {
      emit_loop();
    } else {
      for (std::uint64_t k = 0; k < reps_; ++k)
        for (std::size_t j = 0; j < tmpl_.size(); ++j)
          emit_plain(advanced(tmpl_[j], stride_[j], k));
    }
    for (std::size_t j = 0; j < partial; ++j)
      push(advanced(tmpl_[j], stride_[j], reps_));
  }

  static RawOp advanced(const RawOp& t, std::int64_t stride, std::uint64_t k) {
    RawOp r = t;
    if (r.has_addr())
      r.addr = r.addr + k * static_cast<Addr>(stride);
    return r;
  }

  void emit_loop() {
    emit_op(Op::Loop, false, tmpl_.size());
    put_varint(tape_.bytes, reps_);
    for (std::size_t j = 0; j < tmpl_.size(); ++j) {
      const RawOp& t = tmpl_[j];
      emit_op(t.op, t.flag, t.val);
      if (t.has_addr()) {
        put_varint(tape_.bytes, t.addr);
        put_varint(tape_.bytes, zigzag(stride_[j]));
      }
    }
    // The delta chains continue from the run's final iteration.
    for (std::size_t j = 0; j < tmpl_.size(); ++j) {
      const RawOp& t = tmpl_[j];
      if (!t.has_addr()) continue;
      const Addr last = advanced(t, stride_[j], reps_ - 1).addr;
      if (t.op == Op::Load || t.op == Op::Store)
        last_data_ = last;
      else
        last_code_ = last;
    }
  }

  void flush_pending(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) emit_plain(pend_[i]);
    pend_.erase(pend_.begin(),
                pend_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void finish() {
    if (in_run_) end_run();
    flush_pending(pend_.size());
  }

  void emit_plain(const RawOp& r) {
    switch (r.op) {
      case Op::Load:
      case Op::Store:
        emit_addr(r.op, r.flag, r.addr, &last_data_);
        break;
      case Op::Branch:
        emit_addr(r.op, r.flag, r.addr, &last_code_);
        break;
      case Op::Ifetch:
        // Opcode carries the count nibble; the pc delta always follows as
        // a varint (see emit_addr's nibble note).
        emit_op(Op::Ifetch, false, r.val);
        put_varint(tape_.bytes, zigzag(delta(r.addr, &last_code_)));
        break;
      case Op::Compute:
      case Op::Toggle:
        emit_op(r.op, r.flag, r.val);
        break;
      case Op::Loop:
        break;  // unreachable: the builder never queues Loop records
    }
  }

  static std::int64_t delta(Addr addr, Addr* last) {
    const std::int64_t d = static_cast<std::int64_t>(addr - *last);
    *last = addr;
    return d;
  }

  /// Opcode byte with an inline operand nibble: values 0..14 ride in the
  /// opcode, 15 escapes to a trailing varint.
  void emit_op(Op op, bool flag, std::uint64_t operand) {
    const std::uint8_t nibble =
        operand < 15 ? static_cast<std::uint8_t>(operand) : 15;
    tape_.bytes.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(op) | (flag ? 0x08 : 0) | (nibble << 4)));
    if (nibble == 15) put_varint(tape_.bytes, operand);
  }

  /// Address-operand record: nibble unused (0), zigzag delta as varint.
  void emit_addr(Op op, bool flag, Addr addr, Addr* last) {
    tape_.bytes.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(op) | (flag ? 0x08 : 0)));
    put_varint(tape_.bytes, zigzag(delta(addr, last)));
  }

  Tape tape_;
  Addr last_data_ = 0;
  Addr last_code_ = 0;

  // Detector state. pend_ holds arrived-but-unencoded ops (absolute
  // addresses); the chains above only advance when bytes are emitted, so
  // deferred emission stays consistent.
  std::vector<RawOp> pend_;
  std::uint64_t n_ops_ = 0;  ///< arrival index of the next op
  /// Arrival index of the last taken branch per pc (back-edge tracking).
  std::unordered_map<Addr, std::uint64_t> be_last_;

  // Open-run state (in_run_): tmpl_ is the first absorbed iteration,
  // stride_ its per-slot address advance, reps_ the absorbed repetition
  // count, slot_ the progress through the current (unfinished) iteration.
  bool in_run_ = false;
  std::vector<RawOp> tmpl_;
  std::vector<std::int64_t> stride_;
  std::uint64_t reps_ = 0;
  std::size_t slot_ = 0;
};

// -- generic decode ----------------------------------------------------------

/// Drive `sink` with every operation of `tape`, in order. `Sink` is any
/// type with the six timing-model entry points (cpu::TimingModel itself,
/// or a test collector):
///
///   compute(uint64_t) load(Addr,bool) store(Addr)
///   branch(Addr,bool) toggle(bool,int32_t) touch_code(Addr,uint32_t)
///
/// This is the whole replay loop: a switch over the opcode byte and varint
/// decodes, with Loop records expanding in a tight addr += stride loop —
/// no IR dispatch, no variable table, no subscript evaluation. Throws
/// std::logic_error on a corrupt or truncated tape.
template <typename Sink>
void replay_into(const Tape& tape, Sink& sink) {
  SELCACHE_CHECK_MSG(tape.version == kTapeVersion,
                     "unsupported tape version");
  const std::uint8_t* p = tape.bytes.data();
  const std::uint8_t* const end = p + tape.bytes.size();
  Addr last_data = 0;
  Addr last_code = 0;
  while (p < end) {
    const std::uint8_t b = *p++;
    const Op op = static_cast<Op>(b & 0x07);
    const bool flag = (b & 0x08) != 0;
    const std::uint8_t nibble = b >> 4;
    switch (op) {
      case Op::Load: {
        last_data += static_cast<Addr>(unzigzag(get_varint(&p, end)));
        sink.load(last_data, flag);
        break;
      }
      case Op::Store: {
        last_data += static_cast<Addr>(unzigzag(get_varint(&p, end)));
        sink.store(last_data);
        break;
      }
      case Op::Ifetch: {
        const std::uint64_t n =
            nibble < 15 ? nibble : get_varint(&p, end);
        last_code += static_cast<Addr>(unzigzag(get_varint(&p, end)));
        sink.touch_code(last_code, static_cast<std::uint32_t>(n));
        break;
      }
      case Op::Branch: {
        last_code += static_cast<Addr>(unzigzag(get_varint(&p, end)));
        sink.branch(last_code, flag);
        break;
      }
      case Op::Compute: {
        const std::uint64_t n =
            nibble < 15 ? nibble : get_varint(&p, end);
        sink.compute(n);
        break;
      }
      case Op::Toggle: {
        const std::uint64_t r =
            nibble < 15 ? nibble : get_varint(&p, end);
        sink.toggle(flag,
                    static_cast<std::int32_t>(static_cast<std::int64_t>(r - 1)));
        break;
      }
      case Op::Loop: {
        const std::uint64_t nslots =
            nibble < 15 ? nibble : get_varint(&p, end);
        SELCACHE_CHECK_MSG(nslots >= 1 && nslots <= kMaxLoopBody,
                           "corrupt tape loop body");
        const std::uint64_t reps = get_varint(&p, end);
        SELCACHE_CHECK_MSG(reps >= 1, "corrupt tape loop reps");
        struct Slot {
          Op op;
          bool flag;
          std::uint64_t val;
          Addr addr;
          std::int64_t stride;
        };
        Slot slots[kMaxLoopBody];
        for (std::uint64_t j = 0; j < nslots; ++j) {
          SELCACHE_CHECK_MSG(p < end, "truncated tape loop slot");
          const std::uint8_t sb = *p++;
          Slot& s = slots[j];
          s.op = static_cast<Op>(sb & 0x07);
          SELCACHE_CHECK_MSG(s.op != Op::Loop, "nested tape loop");
          s.flag = (sb & 0x08) != 0;
          const std::uint8_t sn = sb >> 4;
          s.val = sn < 15 ? sn : get_varint(&p, end);
          if (s.op <= Op::Branch) {
            s.addr = get_varint(&p, end);
            s.stride = unzigzag(get_varint(&p, end));
          } else {
            s.addr = 0;
            s.stride = 0;
          }
        }
        for (std::uint64_t k = 0; k < reps; ++k) {
          for (std::uint64_t j = 0; j < nslots; ++j) {
            Slot& s = slots[j];
            switch (s.op) {
              case Op::Load:
                last_data = s.addr;
                sink.load(last_data, s.flag);
                break;
              case Op::Store:
                last_data = s.addr;
                sink.store(last_data);
                break;
              case Op::Ifetch:
                last_code = s.addr;
                sink.touch_code(last_code,
                                static_cast<std::uint32_t>(s.val));
                break;
              case Op::Branch:
                last_code = s.addr;
                sink.branch(last_code, s.flag);
                break;
              case Op::Compute:
                sink.compute(s.val);
                break;
              case Op::Toggle:
                sink.toggle(s.flag,
                            static_cast<std::int32_t>(
                                static_cast<std::int64_t>(s.val - 1)));
                break;
              case Op::Loop:
                break;  // rejected at slot decode
            }
            s.addr += static_cast<Addr>(s.stride);
          }
        }
        break;
      }
      default:
        SELCACHE_CHECK_MSG(false, "corrupt tape opcode");
    }
  }
}

// -- file round-trip ---------------------------------------------------------

/// Binary save with a versioned header ("SCTAPE01" magic, stats, byte
/// count). Crash-safe: unique .tmp sibling + atomic rename through
/// support::write_file_atomic; the status carries the failing stage and
/// errno text (ENOSPC/EIO surface here, never as a truncated tape).
support::WriteStatus save_tape_status(const Tape& tape,
                                      const std::string& path);

/// Boolean convenience wrapper around save_tape_status.
bool save_tape(const Tape& tape, const std::string& path);

/// Load and validate a saved tape; throws std::logic_error on malformed
/// input (bad magic, version, truncation, stat/byte-count mismatch).
Tape load_tape(const std::string& path);

}  // namespace selcache::tape
