#include "tape/cache.h"

#include <chrono>

namespace selcache::tape {

TapeCache::TapePtr TapeCache::get_or_record(
    const std::string& key, const std::function<Tape()>& record,
    bool* recorded_here) {
  if (recorded_here != nullptr) *recorded_here = false;

  std::promise<TapePtr> promise;
  std::shared_future<TapePtr> waiter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tapes_.find(key);
    if (it != tapes_.end()) {
      waiter = it->second;
    } else {
      tapes_.emplace(key, promise.get_future().share());
    }
  }
  if (waiter.valid()) return waiter.get();  // rethrows a recording failure

  // We won the claim: run the recording simulation outside the lock.
  try {
    TapePtr tape = std::make_shared<const Tape>(record());
    promise.set_value(tape);
    if (recorded_here != nullptr) *recorded_here = true;
    return tape;
  } catch (...) {
    // Release the claim so a later call can retry, then fail waiters and
    // the caller with the original exception.
    {
      std::lock_guard<std::mutex> lock(mu_);
      tapes_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

TapeCache::TapePtr TapeCache::find(const std::string& key) const {
  std::shared_future<TapePtr> fut;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tapes_.find(key);
    if (it == tapes_.end()) return nullptr;
    fut = it->second;
  }
  if (fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
    return nullptr;
  return fut.get();
}

std::vector<std::pair<std::string, TapeCache::TapePtr>> TapeCache::snapshot()
    const {
  std::vector<std::pair<std::string, std::shared_future<TapePtr>>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.assign(tapes_.begin(), tapes_.end());
  }
  std::vector<std::pair<std::string, TapePtr>> out;
  out.reserve(pending.size());
  for (auto& [key, fut] : pending)
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
      out.emplace_back(key, fut.get());
  return out;
}

std::size_t TapeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tapes_.size();
}

void TapeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tapes_.clear();
}

std::uint64_t TapeCache::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& [key, tape] : snapshot()) n += tape->size_bytes();
  return n;
}

std::uint64_t TapeCache::total_data_accesses() const {
  std::uint64_t n = 0;
  for (const auto& [key, tape] : snapshot()) n += tape->stats.data_accesses();
  return n;
}

TapeCache& TapeCache::global() {
  static TapeCache cache;
  return cache;
}

}  // namespace selcache::tape
