#include "tape/tape.h"

#include <cstring>
#include <fstream>

#include "support/io.h"

namespace selcache::tape {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'A', 'P', 'E', '0', '1'};

/// Fixed-width little-endian file header following the magic. The stat
/// counts are part of the header so load_tape can cross-check them against
/// the decoded stream length without decoding.
struct FileHeader {
  std::uint8_t version;
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
  std::uint64_t loads;
  std::uint64_t stores;
  std::uint64_t ifetch_batches;
  std::uint64_t branches;
  std::uint64_t computes;
  std::uint64_t toggles;
  std::uint64_t n_bytes;
};
static_assert(sizeof(FileHeader) == 64, "stable on-disk layout");

}  // namespace

support::WriteStatus save_tape_status(const Tape& tape,
                                      const std::string& path) {
  // Serialize into memory, then hand the bytes to the hardened atomic
  // writer: every OS-level step is checked there, so ENOSPC/EIO surface as
  // a structured status instead of a silently-truncated tape.
  std::string data;
  data.reserve(sizeof(kMagic) + sizeof(FileHeader) + tape.bytes.size());
  data.append(kMagic, sizeof(kMagic));
  FileHeader h{};
  h.version = tape.version;
  h.loads = tape.stats.loads;
  h.stores = tape.stats.stores;
  h.ifetch_batches = tape.stats.ifetch_batches;
  h.branches = tape.stats.branches;
  h.computes = tape.stats.computes;
  h.toggles = tape.stats.toggles;
  h.n_bytes = tape.bytes.size();
  data.append(reinterpret_cast<const char*>(&h), sizeof(h));
  data.append(reinterpret_cast<const char*>(tape.bytes.data()),
              tape.bytes.size());
  return support::write_file_atomic(path, data);
}

bool save_tape(const Tape& tape, const std::string& path) {
  return save_tape_status(tape, path).ok();
}

Tape load_tape(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "cannot open tape " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  SELCACHE_CHECK_MSG(in && std::memcmp(magic, kMagic, 8) == 0,
                     "bad tape magic in " + path);
  FileHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "truncated tape header");
  SELCACHE_CHECK_MSG(h.version == kTapeVersion,
                     "unsupported tape version in " + path);

  Tape tape;
  tape.version = h.version;
  tape.stats.loads = h.loads;
  tape.stats.stores = h.stores;
  tape.stats.ifetch_batches = h.ifetch_batches;
  tape.stats.branches = h.branches;
  tape.stats.computes = h.computes;
  tape.stats.toggles = h.toggles;
  // Bound the claimed body size by what the file can actually hold before
  // allocating: a corrupt header must fail as corruption, not as a
  // multi-gigabyte resize.
  const auto body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(body_start);
  SELCACHE_CHECK_MSG(body_start >= 0 && file_end >= body_start &&
                         h.n_bytes <= static_cast<std::uint64_t>(
                                          file_end - body_start),
                     "tape body larger than file in " + path);
  tape.bytes.resize(h.n_bytes);
  in.read(reinterpret_cast<char*>(tape.bytes.data()),
          static_cast<std::streamsize>(h.n_bytes));
  SELCACHE_CHECK_MSG(static_cast<bool>(in) &&
                         static_cast<std::uint64_t>(in.gcount()) == h.n_bytes,
                     "truncated tape body");

  // Cross-check: the stream must decode cleanly and contain exactly the
  // operation counts the header claims (a counting null sink costs one
  // linear pass at load time — loads are rare next to replays).
  //
  // The decode pass is bounded by the header's claim: a Loop record's rep
  // count comes straight from an untrusted varint, so without a budget a
  // corrupt tape could encode a near-2^64-iteration loop and turn this
  // validation pass into a hang. Exceeding the claimed total aborts as
  // corruption immediately — semantics-preserving for valid tapes, which
  // must match the claim exactly anyway. The claim itself is sanity-capped:
  // real tapes are bounded by what a simulation can emit in reasonable
  // wall-clock time, orders of magnitude under the cap.
  const std::uint64_t claimed = h.loads + h.stores + h.ifetch_batches +
                                h.branches + h.computes + h.toggles;
  constexpr std::uint64_t kMaxTapeOps = 1ULL << 33;
  SELCACHE_CHECK_MSG(claimed <= kMaxTapeOps,
                     "implausible tape op count in " + path);
  struct CountingSink {
    TapeStats s;
    std::uint64_t total = 0;
    std::uint64_t budget = 0;
    void bump() {
      ++total;
      SELCACHE_CHECK_MSG(total <= budget,
                         "tape stream exceeds declared op counts");
    }
    void load(Addr, bool) { bump(); ++s.loads; }
    void store(Addr) { bump(); ++s.stores; }
    void touch_code(Addr, std::uint32_t) { bump(); ++s.ifetch_batches; }
    void branch(Addr, bool) { bump(); ++s.branches; }
    void compute(std::uint64_t) { bump(); ++s.computes; }
    void toggle(bool, std::int32_t) { bump(); ++s.toggles; }
  } counter;
  counter.budget = claimed;
  replay_into(tape, counter);
  SELCACHE_CHECK_MSG(counter.s == tape.stats,
                     "tape stats disagree with stream in " + path);
  return tape;
}

}  // namespace selcache::tape
