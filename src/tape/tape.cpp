#include "tape/tape.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace selcache::tape {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'T', 'A', 'P', 'E', '0', '1'};

/// Fixed-width little-endian file header following the magic. The stat
/// counts are part of the header so load_tape can cross-check them against
/// the decoded stream length without decoding.
struct FileHeader {
  std::uint8_t version;
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
  std::uint64_t loads;
  std::uint64_t stores;
  std::uint64_t ifetch_batches;
  std::uint64_t branches;
  std::uint64_t computes;
  std::uint64_t toggles;
  std::uint64_t n_bytes;
};
static_assert(sizeof(FileHeader) == 64, "stable on-disk layout");

}  // namespace

bool save_tape(const Tape& tape, const std::string& path) {
  // Crash-safe like core::write_text_file / codegen::save_trace: write a
  // .tmp sibling, then atomically rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, sizeof(kMagic));
    FileHeader h{};
    h.version = tape.version;
    h.loads = tape.stats.loads;
    h.stores = tape.stats.stores;
    h.ifetch_batches = tape.stats.ifetch_batches;
    h.branches = tape.stats.branches;
    h.computes = tape.stats.computes;
    h.toggles = tape.stats.toggles;
    h.n_bytes = tape.bytes.size();
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(reinterpret_cast<const char*>(tape.bytes.data()),
              static_cast<std::streamsize>(tape.bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Tape load_tape(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "cannot open tape " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  SELCACHE_CHECK_MSG(in && std::memcmp(magic, kMagic, 8) == 0,
                     "bad tape magic in " + path);
  FileHeader h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  SELCACHE_CHECK_MSG(static_cast<bool>(in), "truncated tape header");
  SELCACHE_CHECK_MSG(h.version == kTapeVersion,
                     "unsupported tape version in " + path);

  Tape tape;
  tape.version = h.version;
  tape.stats.loads = h.loads;
  tape.stats.stores = h.stores;
  tape.stats.ifetch_batches = h.ifetch_batches;
  tape.stats.branches = h.branches;
  tape.stats.computes = h.computes;
  tape.stats.toggles = h.toggles;
  // Bound the claimed body size by what the file can actually hold before
  // allocating: a corrupt header must fail as corruption, not as a
  // multi-gigabyte resize.
  const auto body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(body_start);
  SELCACHE_CHECK_MSG(body_start >= 0 && file_end >= body_start &&
                         h.n_bytes <= static_cast<std::uint64_t>(
                                          file_end - body_start),
                     "tape body larger than file in " + path);
  tape.bytes.resize(h.n_bytes);
  in.read(reinterpret_cast<char*>(tape.bytes.data()),
          static_cast<std::streamsize>(h.n_bytes));
  SELCACHE_CHECK_MSG(static_cast<bool>(in) &&
                         static_cast<std::uint64_t>(in.gcount()) == h.n_bytes,
                     "truncated tape body");

  // Cross-check: the stream must decode cleanly and contain exactly the
  // operation counts the header claims (a counting null sink costs one
  // linear pass at load time — loads are rare next to replays).
  struct CountingSink {
    TapeStats s;
    void load(Addr, bool) { ++s.loads; }
    void store(Addr) { ++s.stores; }
    void touch_code(Addr, std::uint32_t) { ++s.ifetch_batches; }
    void branch(Addr, bool) { ++s.branches; }
    void compute(std::uint64_t) { ++s.computes; }
    void toggle(bool, std::int32_t) { ++s.toggles; }
  } counter;
  replay_into(tape, counter);
  SELCACHE_CHECK_MSG(counter.s == tape.stats,
                     "tape stats disagree with stream in " + path);
  return tape;
}

}  // namespace selcache::tape
