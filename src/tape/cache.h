// TapeCache — in-memory, thread-safe store of recorded tapes keyed by
// (workload, version, stream fingerprint).
//
// Machine-configuration sweeps call get_or_record() once per (workload,
// version) cell per machine point; the first caller for a key runs the
// recording simulation, every later caller (same thread or another worker
// of a parallel sweep) gets the finished tape and replays it. Population
// is once-per-key even under concurrency: losers of the claim race block
// on the winner's future instead of re-running the simulation.
//
// The key deliberately includes a fingerprint of everything the recorded
// stream depends on besides the machine (data seed, optimization pipeline
// settings) so a sweep that varies those records fresh tapes instead of
// replaying stale ones.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tape/tape.h"

namespace selcache::tape {

class TapeCache {
 public:
  using TapePtr = std::shared_ptr<const Tape>;

  /// Return the tape for `key`, invoking `record` to produce it if absent.
  /// `record` runs at most once per key across all threads; concurrent
  /// callers for the same key block until it finishes. If `record` throws,
  /// the claim is released (a later call retries), waiters see the same
  /// exception, and the exception propagates to the recording caller.
  /// `*recorded_here` (optional) reports whether THIS call did the
  /// recording — callers use it to reuse the recording run's results
  /// instead of replaying.
  TapePtr get_or_record(const std::string& key,
                        const std::function<Tape()>& record,
                        bool* recorded_here = nullptr);

  /// The tape for `key`, or nullptr when absent or still being recorded.
  TapePtr find(const std::string& key) const;

  /// Fully recorded tapes, in key order (deterministic for reporting).
  std::vector<std::pair<std::string, TapePtr>> snapshot() const;

  std::size_t size() const;
  void clear();

  /// Aggregate encoded size / recorded data accesses over finished tapes.
  std::uint64_t total_bytes() const;
  std::uint64_t total_data_accesses() const;

  /// Process-wide cache used when RunOptions::reuse_tape is set without an
  /// explicit cache.
  static TapeCache& global();

 private:
  mutable std::mutex mu_;
  // map (not unordered_map) so snapshot() is deterministically ordered.
  std::map<std::string, std::shared_future<TapePtr>> tapes_;
};

}  // namespace selcache::tape
