// TapeReplayer — the replay side of the tape engine.
//
// Feeds a recorded tape straight into cpu::TimingModel: one switch over
// the opcode byte plus varint decodes per operation — no IR dispatch, no
// variable table, no subscript evaluation, no DataEnv. Because the tape
// stores the pre-expansion stream (one record per touch_code call), the
// replayed machine re-expands I-fetches with its own block size and the
// run is bit-identical to interpreting the program on that machine.
#pragma once

#include "cpu/timing_model.h"
#include "tape/tape.h"

namespace selcache::tape {

class TapeReplayer {
 public:
  /// Replay `tape` into `cpu`. Throws std::logic_error on a corrupt tape.
  static void replay(const Tape& tape, cpu::TimingModel& cpu) {
    replay_into(tape, cpu);
  }
};

}  // namespace selcache::tape
