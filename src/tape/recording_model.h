// RecordingTimingModel — the record-side shim of the tape engine.
//
// Presents the same six entry points as cpu::TimingModel, forwards every
// call to the real model unchanged (so the recording run IS a bona fide
// simulation whose results are used directly), and streams each operation
// into a TapeBuilder. codegen::BasicTraceEngine duck-types its CPU
// parameter, so one interpreted run through this shim yields both the
// run's results and the tape that replays them.
#pragma once

#include "cpu/timing_model.h"
#include "tape/tape.h"

namespace selcache::tape {

class RecordingTimingModel {
 public:
  RecordingTimingModel(cpu::TimingModel& inner, TapeBuilder& builder)
      : inner_(inner), builder_(builder) {}

  void compute(std::uint64_t n) {
    builder_.compute(n);
    inner_.compute(n);
  }

  void load(Addr addr, bool dependent = false) {
    builder_.load(addr, dependent);
    inner_.load(addr, dependent);
  }

  void store(Addr addr) {
    builder_.store(addr);
    inner_.store(addr);
  }

  void branch(Addr pc, bool taken) {
    builder_.branch(pc, taken);
    inner_.branch(pc, taken);
  }

  void toggle(bool on, std::int32_t region = -1) {
    builder_.toggle(on, region);
    inner_.toggle(on, region);
  }

  void touch_code(Addr pc, std::uint32_t n_instr) {
    builder_.ifetch(pc, n_instr);
    inner_.touch_code(pc, n_instr);
  }

 private:
  cpu::TimingModel& inner_;
  TapeBuilder& builder_;
};

}  // namespace selcache::tape
