// Batched multi-config replay: decode a tape ONCE and fan every decoded
// batch out to N independent simulations.
//
// The classic replay loop (replayer.h) re-decodes the tape for every machine
// configuration a sweep visits — an N-point figure axis pays the varint/
// zigzag decode N times per cell. MultiReplayer splits decode from
// simulation: replay_into drives a BatchingSink that expands the tape into
// fixed-size structure-of-arrays op batches (op kind, flag, payload,
// address), and each full batch is fed to every sink before the next batch
// is decoded. Decode cost is paid once per tape regardless of how many
// machine points consume it.
//
// Determinism contract: every sink receives exactly the same call sequence,
// in exactly tape order, as a dedicated replay_into would deliver — the
// batch is immutable while it fans out, and each sink is driven by a single
// task at a time. With a ThreadPool the N sinks advance concurrently (one
// task per sink per batch, joined before the next batch); without one they
// advance interleaved on the calling thread. Either way each simulation's
// state evolution is bit-identical to a solo replay at any thread count.
//
// Batch lookahead: while feeding op i, the decoded address of a data op a
// few slots ahead is known, so the sink's L1D/DTLB sets can be software-
// prefetched into the HOST cache before the probe walks them (sinks expose
// this via an optional prefetch_data(Addr) hook; sinks without one — test
// collectors — simply skip it).
#pragma once

#include <cstdint>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "support/thread_pool.h"
#include "tape/tape.h"

namespace selcache::tape {

/// Default ops per decoded batch. Sized from `selcache tape --stat` plus a
/// measured sweep (64..65536 ops on the 4-point fig5 axis): the suite's
/// tapes decode to millions of ops each, so even 512-op batches amortize
/// the per-batch fan-out to noise (thousands of batches per tape), and the
/// small SoA slice (~11 KB) leaves the sinks' own tag/table state
/// cache-resident between batches — 8K-op batches measured ~15% slower
/// because each fan-out pass re-streams a 176 KB batch through the cache.
inline constexpr std::uint32_t kDefaultBatchOps = 512;

/// How many ops ahead of the one being fed the lookahead prefetch runs.
inline constexpr std::uint32_t kPrefetchLookahead = 8;

/// A fixed-size structure-of-arrays slice of a decoded tape.
struct OpBatch {
  explicit OpBatch(std::uint32_t capacity)
      : cap(capacity),
        op(capacity),
        flag(capacity),
        val(capacity),
        addr(capacity) {}

  std::uint32_t cap;               ///< capacity (ops per batch)
  std::uint32_t n = 0;             ///< ops currently held
  std::vector<std::uint8_t> op;    ///< tape::Op of each slot
  std::vector<std::uint8_t> flag;  ///< dependent / taken / on bit
  std::vector<std::uint64_t> val;  ///< instr count, or toggle region + 1
  std::vector<Addr> addr;          ///< data address or pc
};

/// Feed one decoded batch to `sink`, in tape order, with lookahead
/// prefetch of upcoming data-op sets when the sink supports it.
template <typename Sink>
void replay_batch(const OpBatch& b, Sink& sink) {
  constexpr bool kCanPrefetch =
      requires(Sink& s, Addr a) { s.prefetch_data(a); };
  for (std::uint32_t i = 0; i < b.n; ++i) {
    if constexpr (kCanPrefetch) {
      const std::uint32_t j = i + kPrefetchLookahead;
      if (j < b.n) {
        const Op nxt = static_cast<Op>(b.op[j]);
        if (nxt == Op::Load || nxt == Op::Store) sink.prefetch_data(b.addr[j]);
      }
    }
    switch (static_cast<Op>(b.op[i])) {
      case Op::Load:
        sink.load(b.addr[i], b.flag[i] != 0);
        break;
      case Op::Store:
        sink.store(b.addr[i]);
        break;
      case Op::Ifetch:
        sink.touch_code(b.addr[i], static_cast<std::uint32_t>(b.val[i]));
        break;
      case Op::Branch:
        sink.branch(b.addr[i], b.flag[i] != 0);
        break;
      case Op::Compute:
        sink.compute(b.val[i]);
        break;
      case Op::Toggle:
        sink.toggle(b.flag[i] != 0,
                    static_cast<std::int32_t>(
                        static_cast<std::int64_t>(b.val[i]) - 1));
        break;
      case Op::Loop:
        break;  // loop records are expanded before batching; never stored
    }
  }
}

/// replay_into sink that accumulates decoded ops into an OpBatch and hands
/// every full batch to `on_batch`. Call flush() after replay_into returns
/// to deliver the final partial batch.
template <typename OnBatch>
class BatchingSink {
 public:
  BatchingSink(std::uint32_t batch_ops, OnBatch on_batch)
      : b_(batch_ops), on_batch_(std::move(on_batch)) {}

  void load(Addr a, bool dependent) { push(Op::Load, dependent, 0, a); }
  void store(Addr a) { push(Op::Store, false, 0, a); }
  void touch_code(Addr pc, std::uint32_t n) { push(Op::Ifetch, false, n, pc); }
  void branch(Addr pc, bool taken) { push(Op::Branch, taken, 0, pc); }
  void compute(std::uint64_t n) { push(Op::Compute, false, n, 0); }
  void toggle(bool on, std::int32_t region) {
    // Same unsigned round-trip as the trace capture: region + 1, so the
    // unattributed region (-1) travels as 0.
    push(Op::Toggle, on,
         static_cast<std::uint64_t>(static_cast<std::int64_t>(region) + 1),
         0);
  }

  void flush() {
    if (b_.n > 0) {
      on_batch_(static_cast<const OpBatch&>(b_));
      b_.n = 0;
    }
  }

 private:
  void push(Op op, bool flag, std::uint64_t val, Addr addr) {
    const std::uint32_t i = b_.n;
    b_.op[i] = static_cast<std::uint8_t>(op);
    b_.flag[i] = flag ? 1 : 0;
    b_.val[i] = val;
    b_.addr[i] = addr;
    if (++b_.n == b_.cap) {
      on_batch_(static_cast<const OpBatch&>(b_));
      b_.n = 0;
    }
  }

  OpBatch b_;
  OnBatch on_batch_;
};

/// Decode `tape` once and drive every sink in `sinks` with its full op
/// stream. With a pool, each batch fans out as one task per sink (joined —
/// with every task finished — before the next batch is decoded; a thrown
/// simulation exception is re-thrown only after the join, so no task ever
/// outlives the batch it reads). Without a pool, sinks advance interleaved
/// on the calling thread. Throws what replay_into / the sinks throw.
template <typename Sink>
void multi_replay(const Tape& tape, const std::vector<Sink*>& sinks,
                  support::ThreadPool* pool = nullptr,
                  std::uint32_t batch_ops = kDefaultBatchOps) {
  if (sinks.empty()) return;
  if (batch_ops == 0) batch_ops = kDefaultBatchOps;
  const bool fan_out = pool != nullptr && sinks.size() > 1;
  auto feed = [&](const OpBatch& b) {
    if (fan_out) {
      std::vector<std::future<void>> done;
      done.reserve(sinks.size());
      for (Sink* s : sinks)
        done.push_back(pool->submit([&b, s] { replay_batch(b, *s); }));
      std::exception_ptr err;
      for (auto& f : done) {
        try {
          f.get();
        } catch (...) {
          if (err == nullptr) err = std::current_exception();
        }
      }
      if (err != nullptr) std::rethrow_exception(err);
    } else {
      for (Sink* s : sinks) replay_batch(b, *s);
    }
  };
  BatchingSink sink(batch_ops, feed);
  replay_into(tape, sink);
  sink.flush();
}

}  // namespace selcache::tape
