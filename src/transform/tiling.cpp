#include "transform/tiling.h"

#include <algorithm>
#include <functional>
#include <map>

#include "analysis/dependence.h"

namespace selcache::transform {

using ir::AffineExpr;
using ir::LoopNode;

namespace {

std::optional<std::int64_t> trip_count(const LoopNode& l) {
  if (!l.lower.is_constant() || !l.upper.is_constant()) return std::nullopt;
  const std::int64_t span = l.upper.constant_term() - l.lower.constant_term();
  if (span <= 0 || l.step <= 0) return std::nullopt;
  return (span + l.step - 1) / l.step;
}

std::int64_t largest_divisor_at_most(std::int64_t n, std::int64_t cap) {
  for (std::int64_t d = std::min(n, cap); d >= 1; --d)
    if (n % d == 0) return d;
  return 1;
}

}  // namespace

std::uint64_t estimate_footprint(const ir::Program& p, const LoopNode& root) {
  std::vector<const ir::Reference*> refs;
  ir::collect_refs(root, refs);

  // Trip counts of every loop in the band subtree, keyed by variable.
  std::map<ir::VarId, std::int64_t> trips;
  std::function<void(const ir::Node&)> walk = [&](const ir::Node& n) {
    if (n.kind != ir::NodeKind::Loop) return;
    const auto& l = static_cast<const LoopNode&>(n);
    trips[l.var] = trip_count(l).value_or(1);
    for (const auto& c : l.body) walk(*c);
  };
  walk(root);

  std::map<ir::ArrayId, std::uint64_t> per_array;
  for (const auto* r : refs) {
    const auto* arr = std::get_if<ir::Reference::Array>(&r->target);
    if (arr == nullptr) continue;
    const ir::ArrayDecl& decl = p.array(arr->id);
    std::uint64_t elems = 1;
    for (std::size_t d = 0; d < arr->subs.size(); ++d) {
      const auto* aff = std::get_if<ir::Subscript::Affine>(&arr->subs[d].value);
      std::int64_t extent = 1;
      if (aff == nullptr) {
        extent = decl.dims[d];  // irregular subscript: assume whole dimension
      } else {
        for (const auto& [v, c] : aff->expr.coeffs()) {
          auto it = trips.find(v);
          if (it != trips.end())
            extent = std::max<std::int64_t>(
                extent, it->second * (c < 0 ? -c : c));
        }
      }
      elems *= static_cast<std::uint64_t>(
          std::min<std::int64_t>(extent, decl.dims[d]));
    }
    per_array[arr->id] =
        std::max(per_array[arr->id],
                 elems * static_cast<std::uint64_t>(decl.elem_size));
  }

  std::uint64_t total = 0;
  for (const auto& [id, bytes] : per_array) total += bytes;
  return total;
}

bool apply_tiling(ir::Program& p, LoopNode& root, const TilingOptions& opt) {
  std::vector<LoopNode*> band = ir::perfect_nest_band(root);
  if (band.size() < 2) return false;
  LoopNode& l1 = *band[0];
  LoopNode& l2 = *band[1];
  if (l1.step != 1 || l2.step != 1) return false;
  const auto t1 = trip_count(l1);
  const auto t2 = trip_count(l2);
  if (!t1 || !t2) return false;
  if (l2.lower.uses(l1.var) || l2.upper.uses(l1.var)) return false;

  if (estimate_footprint(p, root) <= opt.cache_bytes) return false;

  // Legality: the tiled pair must be fully permutable.
  std::vector<ir::VarId> vars;
  for (const auto* l : band) vars.push_back(l->var);
  const auto deps = analysis::collect_dependences(root, vars);
  if (deps.unknown) return false;
  for (const auto& dep : deps.deps)
    if (dep.distance[0] < 0 || dep.distance[1] < 0) return false;

  const std::int64_t ti = largest_divisor_at_most(*t1, opt.tile);
  const std::int64_t tj = largest_divisor_at_most(*t2, opt.tile);
  // Degenerate tiles (prime-ish trip counts) only add loop overhead.
  if (ti < opt.min_tile || tj < opt.min_tile) return false;
  if (ti >= *t1 && tj >= *t2) return false;

  const auto& names = p.var_names();
  const ir::VarId i = l1.var, j = l2.var;
  const ir::VarId it = p.add_var(names[i] + "t");
  const ir::VarId jt = p.add_var(names[j] + "t");

  // Innermost pair: element loops over one tile.
  auto loop_j = std::make_unique<LoopNode>();
  loop_j->var = j;
  loop_j->lower = AffineExpr::variable(jt);
  loop_j->upper = AffineExpr::variable(jt) + tj;
  loop_j->step = 1;
  loop_j->code_addr = l2.code_addr + 4;
  loop_j->body = std::move(l2.body);

  auto loop_i = std::make_unique<LoopNode>();
  loop_i->var = i;
  loop_i->lower = AffineExpr::variable(it);
  loop_i->upper = AffineExpr::variable(it) + ti;
  loop_i->step = 1;
  loop_i->code_addr = l1.code_addr + 4;
  loop_i->body.push_back(std::move(loop_j));

  // Outer pair: the original nodes become tile-controller loops.
  l2.var = jt;
  l2.step = tj;
  l2.body.clear();
  l2.body.push_back(std::move(loop_i));
  l1.var = it;
  l1.step = ti;
  return true;
}

}  // namespace selcache::transform
