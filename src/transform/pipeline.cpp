#include "transform/pipeline.h"

#include <functional>

#include "transform/fusion.h"
#include "transform/interchange.h"
#include "transform/layout_selection.h"
#include "transform/scalar_replacement.h"
#include "transform/unroll_jam.h"

namespace selcache::transform {

using ir::LoopNode;

namespace {

/// Apply fn to every maximal perfect band inside `root` (root included).
void for_each_band(LoopNode& root, const std::function<void(LoopNode&)>& fn) {
  if (ir::is_perfect_nest(root)) {
    fn(root);
    return;
  }
  fn(root);  // still allow band-local passes on the outer loop itself
  for (auto& child : root.body)
    if (child->kind == ir::NodeKind::Loop)
      for_each_band(static_cast<LoopNode&>(*child), fn);
}

}  // namespace

OptimizeReport optimize_program(ir::Program& p, const OptimizeOptions& opt) {
  OptimizeReport report;

  analysis::RegionAnalysis regions =
      opt.insert_markers ? analysis::detect_and_mark(p, opt.threshold)
                         : analysis::analyze_regions(p, opt.threshold);
  report.markers_inserted = regions.markers_inserted;
  report.compiler_regions = regions.compiler_roots.size();

  for (LoopNode* root : regions.compiler_roots) {
    if (opt.enable_fusion) report.fused += apply_fusion(p, *root);
    for_each_band(*root, [&](LoopNode& band) {
      if (!ir::is_perfect_nest(band)) return;
      if (opt.enable_interchange && apply_interchange(p, band))
        ++report.interchanged;
      if (opt.enable_tiling && apply_tiling(p, band, opt.tiling))
        ++report.tiled;
      if (opt.enable_unroll_jam &&
          apply_unroll_jam(p, band, opt.unroll) > 1)
        ++report.unrolled;
      if (opt.enable_scalar_replacement) {
        const auto r = apply_scalar_replacement(p, band);
        report.hoisted_refs += r.hoisted_loads + r.hoisted_stores;
        report.deduplicated_refs += r.deduplicated;
      }
    });
  }

  if (opt.enable_layout_selection)
    report.layouts_changed =
        select_layouts(p, std::span<LoopNode* const>(regions.compiler_roots));

  if (opt.insert_markers) {
    if (opt.eliminate_markers)
      report.markers_eliminated = analysis::eliminate_redundant_markers(p);
    report.markers_final = analysis::count_markers(p);
  }
  return report;
}

}  // namespace selcache::transform
