#include "transform/pipeline.h"

#include <algorithm>
#include <functional>

#include "transform/fusion.h"
#include "transform/interchange.h"
#include "transform/layout_selection.h"
#include "transform/scalar_replacement.h"
#include "transform/unroll_jam.h"

namespace selcache::transform {

using ir::LoopNode;

namespace {

/// Apply fn to every maximal perfect band inside `root` (root included).
void for_each_band(LoopNode& root, const std::function<void(LoopNode&)>& fn) {
  if (ir::is_perfect_nest(root)) {
    fn(root);
    return;
  }
  fn(root);  // still allow band-local passes on the outer loop itself
  for (auto& child : root.body)
    if (child->kind == ir::NodeKind::Loop)
      for_each_band(static_cast<LoopNode&>(*child), fn);
}

std::vector<ir::VarId> band_vars_of(LoopNode& root) {
  std::vector<ir::VarId> vars;
  for (const auto* l : ir::perfect_nest_band(root)) vars.push_back(l->var);
  return vars;
}

std::string band_site(const ir::Program& p,
                      const std::vector<ir::VarId>& vars) {
  std::string site = "band (";
  for (std::size_t k = 0; k < vars.size(); ++k) {
    if (k > 0) site += ", ";
    site += vars[k] < p.var_names().size() ? p.var_names()[vars[k]]
                                           : "#" + std::to_string(vars[k]);
  }
  return site + ")";
}

/// Start a record with a pre-image clone of the band about to be rewritten.
TransformRecord open_record(TransformKind kind, const ir::Program& p,
                            LoopNode& band) {
  TransformRecord rec;
  rec.kind = kind;
  rec.pre_image = band.clone();
  rec.band_vars = band_vars_of(band);
  rec.site = band_site(p, rec.band_vars);
  return rec;
}

}  // namespace

OptimizeReport optimize_program(ir::Program& p, const OptimizeOptions& opt) {
  OptimizeReport report;
  const auto stage_done = [&](const char* stage) {
    if (opt.after_stage) opt.after_stage(stage, p);
  };

  analysis::MethodPolicy policy{opt.threshold, {}};
  if (opt.method_predictor)
    policy.loop_predictor = [&](const ir::LoopNode& l) {
      return opt.method_predictor(p, l);
    };
  analysis::RegionAnalysis regions = opt.insert_markers
                                         ? analysis::detect_and_mark(p, policy)
                                         : analysis::analyze_regions(p, policy);
  report.markers_inserted = regions.markers_inserted;
  report.compiler_regions = regions.compiler_roots.size();
  stage_done("regions");

  for (LoopNode* root : regions.compiler_roots) {
    if (opt.enable_fusion) report.fused += apply_fusion(p, *root, opt.log);
    for_each_band(*root, [&](LoopNode& band) {
      if (!ir::is_perfect_nest(band)) return;
      if (opt.enable_interchange) {
        TransformRecord rec;
        if (opt.log != nullptr)
          rec = open_record(TransformKind::Interchange, p, band);
        if (apply_interchange(p, band)) {
          ++report.interchanged;
          if (opt.log != nullptr) {
            // Derive the applied permutation from the pre/post band orders.
            const std::vector<ir::VarId> post = band_vars_of(band);
            rec.perm.resize(post.size());
            for (std::size_t k = 0; k < post.size(); ++k) {
              const auto it = std::find(rec.band_vars.begin(),
                                        rec.band_vars.end(), post[k]);
              rec.perm[k] = static_cast<std::size_t>(
                  it - rec.band_vars.begin());
            }
            opt.log->records.push_back(std::move(rec));
          }
        }
      }
      if (opt.enable_tiling) {
        TransformRecord rec;
        if (opt.log != nullptr)
          rec = open_record(TransformKind::Tiling, p, band);
        if (apply_tiling(p, band, opt.tiling)) {
          ++report.tiled;
          if (opt.log != nullptr) {
            // Post-image: the original pair became tile-controller loops
            // whose steps are the chosen tile sizes.
            const auto post = ir::perfect_nest_band(band);
            rec.tile_outer = post.empty() ? 0 : post[0]->step;
            rec.tile_inner = post.size() < 2 ? 0 : post[1]->step;
            opt.log->records.push_back(std::move(rec));
          }
        }
      }
      if (opt.enable_unroll_jam) {
        TransformRecord rec;
        if (opt.log != nullptr)
          rec = open_record(TransformKind::UnrollJam, p, band);
        const std::uint32_t factor = apply_unroll_jam(p, band, opt.unroll);
        if (factor > 1) {
          ++report.unrolled;
          if (opt.log != nullptr) {
            rec.factor = factor;
            opt.log->records.push_back(std::move(rec));
          }
        }
      }
      if (opt.enable_scalar_replacement) {
        const auto r = apply_scalar_replacement(p, band);
        report.hoisted_refs += r.hoisted_loads + r.hoisted_stores;
        report.deduplicated_refs += r.deduplicated;
      }
    });
  }
  stage_done("loop-transforms");

  if (opt.enable_layout_selection)
    report.layouts_changed =
        select_layouts(p, std::span<LoopNode* const>(regions.compiler_roots));
  stage_done("layout");

  if (opt.insert_markers) {
    if (opt.eliminate_markers)
      report.markers_eliminated = analysis::eliminate_redundant_markers(p);
    report.markers_final = analysis::count_markers(p);
    stage_done("markers");
  }
  return report;
}

}  // namespace selcache::transform
