// Data-layout (memory-layout) selection (§3.2, after [12] / [5]).
//
// After interchange fixes the loop order, each array referenced in compiler
// regions votes for the layout that makes the innermost loop walk it
// contiguously: if the innermost induction variable subscripts the FIRST
// dimension (column walk), the array prefers column-major; if the LAST
// dimension, row-major. The paper's example: after making loop i innermost,
// V (accessed along rows) stays row-major while W (accessed along columns)
// becomes column-major.
#pragma once

#include <span>

#include "ir/program.h"

namespace selcache::transform {

/// Choose layouts for every array referenced in the subtrees rooted at
/// `regions`, by majority vote across references. Returns the number of
/// arrays whose layout changed.
std::size_t select_layouts(ir::Program& p,
                           std::span<ir::LoopNode* const> regions);

}  // namespace selcache::transform
