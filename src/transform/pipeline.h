// The compiler-side optimization pipeline (Figure 1).
//
//   input program
//     -> region detection (+ ON/OFF insertion, selective mode only)
//     -> redundant ON/OFF elimination
//     -> per compiler-region: interchange -> tiling -> unroll-and-jam
//                             -> scalar replacement
//     -> program-wide data-layout selection (votes from compiler regions)
//
// Three products of the same source program feed the evaluation (§4.4):
//   * base code        — no locality optimization, no markers;
//   * optimized code   — locality-optimized, no markers (PureSoftware and
//                        Combined versions);
//   * selective code   — locality-optimized + ON/OFF markers (Selective).
#pragma once

#include <functional>

#include "analysis/marker_elimination.h"
#include "analysis/region_detection.h"
#include "transform/tiling.h"
#include "transform/transform_log.h"

namespace selcache::transform {

struct OptimizeOptions {
  double threshold = analysis::kDefaultThreshold;
  TilingOptions tiling{};
  std::uint32_t unroll = 4;
  bool enable_fusion = true;
  bool enable_interchange = true;
  bool enable_tiling = true;
  bool enable_unroll_jam = true;
  bool enable_scalar_replacement = true;
  bool enable_layout_selection = true;
  /// Insert + clean ON/OFF markers (selective product).
  bool insert_markers = false;
  /// Run redundant-marker elimination after insertion (Figure 2(b)->2(c)).
  /// Disable only to measure the elimination pass's value (ablation).
  bool eliminate_markers = true;
  /// When set, every applied loop transform is recorded with a clone of its
  /// pre-image for post-hoc legality certification (verify subsystem). Not
  /// owned; must outlive the optimize_program() call. A single log must not
  /// be shared across concurrently optimized programs.
  TransformLog* log = nullptr;
  /// Invoked after each pipeline stage ("regions", "loop-transforms",
  /// "layout", "markers") with the program in its current state — the hook
  /// verify::enable_pipeline_verification installs to re-check IR
  /// invariants as the pipeline runs.
  std::function<void(const char* stage, const ir::Program&)> after_stage;
  /// Prediction-driven region classification: when set, innermost-loop
  /// method decisions consult this (the program being optimized plus the
  /// loop) instead of the static ref-count ratio; a nullopt return falls
  /// back to the heuristic. locality::make_method_predictor builds one.
  /// Left empty (the default), classification is bit-identical to the
  /// pre-predictor pipeline.
  std::function<std::optional<analysis::Method>(const ir::Program&,
                                                const ir::LoopNode&)>
      method_predictor;
  /// Identifies the predictor's configuration in the trace-tape stream key
  /// (a predictor changes where markers land, so tapes recorded under
  /// different predictors must not collide). Set it to a stable nonzero
  /// hash whenever method_predictor is set.
  std::uint64_t method_predictor_fingerprint = 0;
};

struct OptimizeReport {
  std::size_t compiler_regions = 0;
  std::size_t fused = 0;
  std::size_t interchanged = 0;
  std::size_t tiled = 0;
  std::size_t unrolled = 0;
  std::size_t hoisted_refs = 0;
  std::size_t deduplicated_refs = 0;
  std::size_t layouts_changed = 0;
  std::size_t markers_inserted = 0;
  std::size_t markers_eliminated = 0;
  std::size_t markers_final = 0;
};

/// Optimize `p` in place. The region analysis decides which loops the
/// software pipeline may touch; hardware regions are left untouched.
OptimizeReport optimize_program(ir::Program& p, const OptimizeOptions& opt);

}  // namespace selcache::transform
