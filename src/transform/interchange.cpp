#include "transform/interchange.h"

#include <algorithm>

namespace selcache::transform {

using analysis::DependenceSet;
using ir::LoopNode;

namespace {

bool bounds_entangled(const std::vector<LoopNode*>& band) {
  for (const auto* a : band)
    for (const auto* b : band)
      if (a != b && (a->lower.uses(b->var) || a->upper.uses(b->var)))
        return true;
  return false;
}

}  // namespace

std::vector<std::size_t> choose_permutation(const ir::Program& p,
                                            const std::vector<LoopNode*>& band,
                                            const DependenceSet& deps) {
  std::vector<const ir::Reference*> refs;
  ir::collect_refs(*band.front(), refs);

  // Score each band loop: how much reuse would become locality if it ran
  // innermost.
  std::vector<double> score(band.size());
  for (std::size_t k = 0; k < band.size(); ++k)
    score[k] = analysis::loop_reuse(p, refs, band[k]->var).score();

  // Desired order: ascending score outside-in (best loop innermost). Stable
  // sort keeps the original order on ties, so reference code stays put.
  std::vector<std::size_t> perm(band.size());
  for (std::size_t k = 0; k < band.size(); ++k) perm[k] = k;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] < score[b];
                   });
  if (analysis::permutation_legal(deps, perm)) return perm;

  // Fallback: just sink the best-scoring loop to the innermost position.
  std::size_t best = 0;
  for (std::size_t k = 1; k < band.size(); ++k)
    if (score[k] > score[best]) best = k;
  std::vector<std::size_t> rotate;
  for (std::size_t k = 0; k < band.size(); ++k)
    if (k != best) rotate.push_back(k);
  rotate.push_back(best);
  if (analysis::permutation_legal(deps, rotate)) return rotate;

  // Identity: nothing legal found.
  std::vector<std::size_t> id(band.size());
  for (std::size_t k = 0; k < band.size(); ++k) id[k] = k;
  return id;
}

bool apply_interchange(ir::Program& p, LoopNode& root) {
  std::vector<LoopNode*> band = ir::perfect_nest_band(root);
  if (band.size() < 2) return false;
  if (bounds_entangled(band)) return false;

  std::vector<ir::VarId> vars;
  for (const auto* l : band) vars.push_back(l->var);
  const DependenceSet deps = analysis::collect_dependences(root, vars);

  const std::vector<std::size_t> perm = choose_permutation(p, band, deps);
  bool identity = true;
  for (std::size_t k = 0; k < perm.size(); ++k)
    if (perm[k] != k) identity = false;
  if (identity) return false;

  // Permute the loop headers among the band nodes; bodies stay in place.
  struct Header {
    ir::VarId var;
    ir::AffineExpr lower, upper;
    std::int64_t step;
    std::uint64_t code_addr;
  };
  std::vector<Header> headers;
  headers.reserve(band.size());
  for (const auto* l : band)
    headers.push_back({l->var, l->lower, l->upper, l->step, l->code_addr});
  for (std::size_t k = 0; k < band.size(); ++k) {
    const Header& h = headers[perm[k]];
    band[k]->var = h.var;
    band[k]->lower = h.lower;
    band[k]->upper = h.upper;
    band[k]->step = h.step;
    band[k]->code_addr = h.code_addr;
  }
  return true;
}

}  // namespace selcache::transform
