// Iteration-space tiling (§3.2, after Wolf & Lam [13]).
//
// Tiles the outer two loops of a perfect nest whose per-traversal data
// footprint exceeds the target cache capacity, turning
//     for i in [0,N) for j in [0,M) body
// into
//     for it in [0,N) step Ti  for jt in [0,M) step Tj
//       for i in [it,it+Ti) for j in [jt,jt+Tj) body
// Tile sizes are shrunk to divisors of the trip counts so no min() bounds
// are needed (our workloads use power-of-two extents). Legality requires
// the tiled pair to be fully permutable.
#pragma once

#include "ir/program.h"

namespace selcache::transform {

struct TilingOptions {
  std::int64_t tile = 32;               ///< requested tile size per dimension
  std::int64_t min_tile = 8;            ///< skip if no divisor this large exists
  std::uint64_t cache_bytes = 32 * 1024;///< tile only when footprint exceeds this
};

/// Estimated bytes the band touches in one full traversal (distinct array
/// elements, ignoring temporal overlap between arrays).
std::uint64_t estimate_footprint(const ir::Program& p,
                                 const ir::LoopNode& root);

/// Tile the band rooted at `root` if profitable and legal. `root` must stay
/// the same node (its header is rewritten in place). Returns true if tiled.
bool apply_tiling(ir::Program& p, ir::LoopNode& root, const TilingOptions& opt);

}  // namespace selcache::transform
