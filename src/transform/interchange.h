// Reuse-driven loop interchange (§3.2 step 1, after [5]/[13]).
//
// For a perfectly nested band, orders the loops so the one carrying the most
// reuse runs innermost (e.g. the paper's example: U[j] has temporal reuse in
// loop i, so i is moved innermost). Only dependence-legal permutations are
// applied; bounds that reference other band variables (triangular nests)
// disable the transform.
#pragma once

#include "analysis/dependence.h"
#include "analysis/reuse.h"
#include "ir/program.h"

namespace selcache::transform {

/// Permute the band rooted at `root` for locality. Returns true when the
/// loop order changed.
bool apply_interchange(ir::Program& p, ir::LoopNode& root);

/// The permutation interchange would choose (for testing/inspection):
/// perm[k] = index within the band of the loop placed at depth k.
std::vector<std::size_t> choose_permutation(
    const ir::Program& p, const std::vector<ir::LoopNode*>& band,
    const analysis::DependenceSet& deps);

}  // namespace selcache::transform
