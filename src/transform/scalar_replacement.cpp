#include "transform/scalar_replacement.h"

#include "analysis/classify.h"

namespace selcache::transform {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::Reference;
using ir::StmtNode;
using ir::Subscript;

namespace {

bool subs_equal(const Subscript& a, const Subscript& b) {
  if (a.value.index() != b.value.index()) return false;
  return std::visit(
      [&](const auto& sa) {
        using T = std::decay_t<decltype(sa)>;
        const auto& sb = std::get<T>(b.value);
        if constexpr (std::is_same_v<T, Subscript::Affine>) {
          return sa.expr == sb.expr;
        } else if constexpr (std::is_same_v<T, Subscript::Product> ||
                             std::is_same_v<T, Subscript::Divide>) {
          return sa.lhs == sb.lhs && sa.rhs == sb.rhs;
        } else {
          return sa.index_array == sb.index_array && sa.index == sb.index &&
                 sa.offset == sb.offset;
        }
      },
      a.value);
}

/// Equality of the addressed location (ignores read/write direction).
bool targets_equal(const Reference& a, const Reference& b) {
  if (a.target.index() != b.target.index()) return false;
  return std::visit(
      [&](const auto& ta) {
        using T = std::decay_t<decltype(ta)>;
        const auto& tb = std::get<T>(b.target);
        if constexpr (std::is_same_v<T, Reference::Scalar>) {
          return ta.id == tb.id;
        } else if constexpr (std::is_same_v<T, Reference::Array>) {
          if (ta.id != tb.id || ta.subs.size() != tb.subs.size()) return false;
          for (std::size_t i = 0; i < ta.subs.size(); ++i)
            if (!subs_equal(ta.subs[i], tb.subs[i])) return false;
          return true;
        } else if constexpr (std::is_same_v<T, Reference::Pointer>) {
          // Each pointer-chase execution advances the walk: never equal.
          return false;
        } else {
          return ta.pool == tb.pool && ta.field_offset == tb.field_offset &&
                 subs_equal(ta.element, tb.element);
        }
      },
      a.target);
}

/// Is `r` hoistable out of loop variable `v`: analyzable and v-invariant.
bool invariant_candidate(const Reference& r, ir::VarId v) {
  if (!analysis::is_analyzable(r)) return false;
  if (!r.is_array() && !r.is_scalar()) return false;
  return !r.uses(v);
}

/// Does any reference in the loop body write array `id` with a subscript
/// pattern different from `ref` (possible alias that blocks hoisting)?
bool conflicting_store(const LoopNode& loop, const Reference& ref) {
  const auto* arr = std::get_if<Reference::Array>(&ref.target);
  if (arr == nullptr) return false;
  std::vector<const Reference*> refs;
  ir::collect_refs(loop, refs);
  for (const auto* r : refs) {
    if (!r->is_write) continue;
    const auto* warr = std::get_if<Reference::Array>(&r->target);
    if (warr == nullptr || warr->id != arr->id) continue;
    if (!targets_equal(*r, ref)) return true;
  }
  return false;
}

void hoist_invariants(std::vector<std::unique_ptr<Node>>& scope,
                      std::size_t loop_pos, LoopNode& loop,
                      ScalarReplacementReport& report) {
  std::vector<Reference> prologue, epilogue;
  for (auto& n : loop.body) {
    if (n->kind != NodeKind::Stmt) continue;
    auto& stmt = static_cast<StmtNode&>(*n).stmt;
    for (auto it = stmt.refs.begin(); it != stmt.refs.end();) {
      if (!invariant_candidate(*it, loop.var) ||
          conflicting_store(loop, *it)) {
        ++it;
        continue;
      }
      Reference moved = *it;
      it = stmt.refs.erase(it);
      if (moved.is_write) {
        // Register carries the value; store once after the loop.
        moved.is_write = true;
        bool merged = false;
        for (auto& e : epilogue)
          if (targets_equal(e, moved)) merged = true;
        if (!merged) {
          epilogue.push_back(moved);
          ++report.hoisted_stores;
        }
        // A written location is also pre-loaded (reduction pattern).
        Reference pre = moved;
        pre.is_write = false;
        bool have = false;
        for (auto& pr : prologue)
          if (targets_equal(pr, pre)) have = true;
        if (!have) prologue.push_back(pre);
      } else {
        bool have = false;
        for (auto& pr : prologue)
          if (targets_equal(pr, moved)) have = true;
        if (!have) {
          prologue.push_back(moved);
          ++report.hoisted_loads;
        }
      }
    }
  }

  if (!prologue.empty()) {
    ir::Stmt s;
    s.refs = std::move(prologue);
    s.compute_ops = 0;
    s.code_addr = loop.code_addr + 2;
    s.label = "hoist_pre";
    scope.insert(scope.begin() + static_cast<std::ptrdiff_t>(loop_pos),
                 std::make_unique<StmtNode>(std::move(s)));
    ++loop_pos;  // loop shifted right
  }
  if (!epilogue.empty()) {
    ir::Stmt s;
    s.refs = std::move(epilogue);
    s.compute_ops = 0;
    s.code_addr = loop.code_addr + 6;
    s.label = "hoist_post";
    scope.insert(scope.begin() + static_cast<std::ptrdiff_t>(loop_pos + 1),
                 std::make_unique<StmtNode>(std::move(s)));
  }
}

void dedup_body(LoopNode& loop, ScalarReplacementReport& report) {
  std::vector<Reference*> seen;
  for (auto& n : loop.body) {
    if (n->kind != NodeKind::Stmt) continue;
    auto& stmt = static_cast<StmtNode&>(*n).stmt;
    for (auto it = stmt.refs.begin(); it != stmt.refs.end();) {
      if (!analysis::is_analyzable(*it)) {
        ++it;
        continue;
      }
      Reference* first = nullptr;
      for (auto* s : seen)
        if (targets_equal(*s, *it)) first = s;
      if (first != nullptr) {
        // Register-resident: the repeated access disappears; dirtiness is
        // carried by the surviving reference.
        first->is_write = first->is_write || it->is_write;
        it = stmt.refs.erase(it);
        ++report.deduplicated;
      } else {
        seen.push_back(&*it);
        ++it;
      }
    }
  }
}

void process_scope(std::vector<std::unique_ptr<Node>>& scope,
                   ScalarReplacementReport& report) {
  for (std::size_t i = 0; i < scope.size(); ++i) {
    if (scope[i]->kind != NodeKind::Loop) continue;
    auto& loop = static_cast<LoopNode&>(*scope[i]);
    process_scope(loop.body, report);
    const bool innermost = ir::child_loops(loop.body).empty();
    if (innermost) {
      dedup_body(loop, report);
      const std::size_t before = scope.size();
      hoist_invariants(scope, i, loop, report);
      i += scope.size() - before;  // skip inserted prologue/epilogue
    }
  }
}

}  // namespace

bool refs_equal(const Reference& a, const Reference& b) {
  return a.is_write == b.is_write && targets_equal(a, b);
}

ScalarReplacementReport apply_scalar_replacement(ir::Program& /*p*/,
                                                 LoopNode& root) {
  ScalarReplacementReport report;
  // Hoisting targets the loops *inside* the region root; the root loop
  // itself has no enclosing scope to hoist into.
  process_scope(root.body, report);
  if (ir::child_loops(root.body).empty()) dedup_body(root, report);
  return report;
}

}  // namespace selcache::transform
