// Unroll-and-jam (§3.2 step 2, after Callahan, Carr & Kennedy [4]).
//
// Unrolls the second-innermost loop of a perfect nest by a factor U and jams
// the copies into the innermost body, substituting v -> v + k*step into each
// replica. Together with scalar replacement this exposes register reuse
// across the jammed iterations. Legal when the unrolled/innermost pair is
// fully permutable (the same condition as interchange between them).
#pragma once

#include "ir/program.h"

namespace selcache::transform {

/// Unroll-and-jam by `factor`. Requires the trip count of the unrolled loop
/// to be divisible by `factor` (factors are shrunk to the largest divisor
/// <= factor). Returns the factor actually applied (1 = not transformed).
std::uint32_t apply_unroll_jam(ir::Program& p, ir::LoopNode& root,
                               std::uint32_t factor);

}  // namespace selcache::transform
