#include "transform/unroll_jam.h"

#include <algorithm>

#include "analysis/dependence.h"

namespace selcache::transform {

using ir::AffineExpr;
using ir::LoopNode;

namespace {

std::optional<std::int64_t> const_trip(const LoopNode& l) {
  if (!l.lower.is_constant() || !l.upper.is_constant() || l.step <= 0)
    return std::nullopt;
  const std::int64_t span = l.upper.constant_term() - l.lower.constant_term();
  return span <= 0 ? std::nullopt
                   : std::optional((span + l.step - 1) / l.step);
}

}  // namespace

std::uint32_t apply_unroll_jam(ir::Program& /*p*/, LoopNode& root,
                               std::uint32_t factor) {
  if (factor < 2) return 1;
  std::vector<LoopNode*> band = ir::perfect_nest_band(root);
  if (band.size() < 2) return 1;
  LoopNode& outer = *band[band.size() - 2];
  LoopNode& inner = *band[band.size() - 1];
  if (inner.lower.uses(outer.var) || inner.upper.uses(outer.var)) return 1;

  const auto trips = const_trip(outer);
  if (!trips) return 1;

  // Shrink to a divisor of the trip count to avoid remainder loops.
  std::uint32_t u = factor;
  while (u > 1 && *trips % u != 0) --u;
  if (u < 2) return 1;

  // Legality: jamming moves outer iterations inside; requires the pair to be
  // fully permutable.
  std::vector<ir::VarId> vars{outer.var, inner.var};
  const auto deps = analysis::collect_dependences(outer, vars);
  if (deps.unknown) return 1;
  for (const auto& dep : deps.deps)
    if (dep.distance[0] < 0 || dep.distance[1] < 0) return 1;

  // Replicate the innermost body statements with v -> v + k*step.
  std::vector<std::unique_ptr<ir::Node>> jammed;
  for (std::uint32_t k = 0; k < u; ++k) {
    const AffineExpr shift = AffineExpr::variable(outer.var) +
                             static_cast<std::int64_t>(k) * outer.step;
    for (const auto& n : inner.body) {
      if (n->kind != ir::NodeKind::Stmt) return 1;  // statements only
      if (k == 0) continue;                         // originals stay
    }
    if (k == 0) continue;
    for (const auto& n : inner.body) {
      const auto& sn = static_cast<const ir::StmtNode&>(*n);
      ir::Stmt copy = sn.stmt;
      for (auto& r : copy.refs) r = r.substituted(outer.var, shift);
      copy.code_addr =
          sn.stmt.code_addr + 4ull * k * copy.instruction_count();
      copy.label = sn.stmt.label.empty()
                       ? ""
                       : sn.stmt.label + "#" + std::to_string(k);
      jammed.push_back(std::make_unique<ir::StmtNode>(std::move(copy)));
    }
  }
  for (auto& n : jammed) inner.body.push_back(std::move(n));
  outer.step *= u;
  return u;
}

}  // namespace selcache::transform
