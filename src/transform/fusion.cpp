#include "transform/fusion.h"

#include <optional>

#include "ir/ref.h"

namespace selcache::transform {

using ir::AffineExpr;
using ir::LoopNode;
using ir::Node;
using ir::NodeKind;
using ir::Reference;
using ir::StmtNode;

namespace {

bool stmts_only(const LoopNode& l) {
  for (const auto& n : l.body)
    if (n->kind != NodeKind::Stmt) return false;
  return true;
}

bool same_constant_bounds(const LoopNode& a, const LoopNode& b) {
  return a.lower.is_constant() && b.lower.is_constant() &&
         a.upper.is_constant() && b.upper.is_constant() &&
         a.lower.constant_term() == b.lower.constant_term() &&
         a.upper.constant_term() == b.upper.constant_term() &&
         a.step == b.step && a.step > 0;
}

/// Alias distance of two affine array refs under single variables va/vb
/// (mapped to a common iteration number): the consumer-vs-producer offset.
/// nullopt-outer = pair unanalyzable (assume the worst);
/// nullopt-inner (no value in *dist) = provably no alias.
struct AliasResult {
  bool analyzable = false;
  std::optional<std::int64_t> distance;  // engaged iff aliasing possible
};

AliasResult alias_distance(const Reference& x, ir::VarId va,
                           const Reference& y, ir::VarId vb) {
  AliasResult out;
  const auto* ax = std::get_if<Reference::Array>(&x.target);
  const auto* ay = std::get_if<Reference::Array>(&y.target);
  if (ax == nullptr || ay == nullptr) return out;  // handled by caller
  if (ax->id != ay->id) {
    out.analyzable = true;
    return out;  // different arrays: no alias
  }
  if (ax->subs.size() != ay->subs.size()) return out;

  std::optional<std::int64_t> d;
  for (std::size_t k = 0; k < ax->subs.size(); ++k) {
    const auto* sx = std::get_if<ir::Subscript::Affine>(&ax->subs[k].value);
    const auto* sy = std::get_if<ir::Subscript::Affine>(&ay->subs[k].value);
    if (sx == nullptr || sy == nullptr) return out;
    const std::int64_t cx = sx->expr.coeff(va);
    const std::int64_t cy = sy->expr.coeff(vb);
    // Any extra variables make the pair unanalyzable here.
    for (const auto& [v, c] : sx->expr.coeffs())
      if (v != va && c != 0) return out;
    for (const auto& [v, c] : sy->expr.coeffs())
      if (v != vb && c != 0) return out;
    if (cx != cy) return out;  // non-uniform: give up
    const std::int64_t delta =
        sx->expr.constant_term() - sy->expr.constant_term();
    if (cx == 0) {
      if (delta != 0) {
        out.analyzable = true;
        return out;  // distinct constants: no alias in this dim
      }
      continue;
    }
    if (delta % cx != 0) {
      out.analyzable = true;
      return out;  // no integral solution: no alias
    }
    const std::int64_t dk = delta / cx;
    if (d.has_value() && *d != dk) {
      out.analyzable = true;
      return out;  // inconsistent: no common iteration pair
    }
    d = dk;
  }
  out.analyzable = true;
  out.distance = d.value_or(0);
  return out;
}

}  // namespace

bool fusion_legal(const LoopNode& a, const LoopNode& b) {
  if (!same_constant_bounds(a, b)) return false;
  if (!stmts_only(a) || !stmts_only(b)) return false;

  std::vector<const Reference*> ra, rb;
  ir::collect_refs(a, ra);
  ir::collect_refs(b, rb);
  for (const auto* x : ra) {
    for (const auto* y : rb) {
      if (!x->is_write && !y->is_write) continue;
      // Non-array references: scalars alias by identity (fusion keeps the
      // statement order per iteration, which preserves scalar chains only
      // when the distance is 0 — scalars have no subscript, so the alias
      // distance is 0: legal). Pools are opaque: refuse.
      if (x->is_pointer() || y->is_pointer() || x->is_field() ||
          y->is_field())
        return false;
      if (x->is_scalar() || y->is_scalar()) {
        const bool same =
            x->is_scalar() && y->is_scalar() &&
            std::get<Reference::Scalar>(x->target).id ==
                std::get<Reference::Scalar>(y->target).id;
        // A scalar written in one loop and used in the other carries the
        // FINAL value across the loop boundary; interleaving changes it.
        if (same) return false;
        continue;  // different targets: no alias
      }
      const AliasResult r = alias_distance(*x, a.var, *y, b.var);
      if (!r.analyzable) return false;
      if (r.distance.has_value() && *r.distance < 0) return false;
    }
  }
  return true;
}

namespace {

/// Fuse within one scope until a fixpoint; recurse into loops first.
std::size_t fuse_scope(ir::Program& p,
                       std::vector<std::unique_ptr<Node>>& scope,
                       TransformLog* log) {
  std::size_t fused = 0;
  for (auto& n : scope)
    if (n->kind == NodeKind::Loop)
      fused += fuse_scope(p, static_cast<LoopNode&>(*n).body, log);

  for (std::size_t i = 0; i + 1 < scope.size();) {
    if (scope[i]->kind != NodeKind::Loop ||
        scope[i + 1]->kind != NodeKind::Loop) {
      ++i;
      continue;
    }
    auto& a = static_cast<LoopNode&>(*scope[i]);
    auto& b = static_cast<LoopNode&>(*scope[i + 1]);
    if (!fusion_legal(a, b)) {
      ++i;
      continue;
    }
    if (log != nullptr) {
      TransformRecord rec;
      rec.kind = TransformKind::Fusion;
      rec.pre_image = a.clone();
      rec.pre_image_b = b.clone();
      rec.band_vars = {a.var, b.var};
      const auto& names = p.var_names();
      rec.site = "loops (" +
                 (a.var < names.size() ? names[a.var]
                                       : "#" + std::to_string(a.var)) +
                 ", " +
                 (b.var < names.size() ? names[b.var]
                                       : "#" + std::to_string(b.var)) +
                 ")";
      log->records.push_back(std::move(rec));
    }
    // Rename b's variable to a's and append its statements.
    for (auto& n : b.body) {
      auto& stmt = static_cast<StmtNode&>(*n).stmt;
      for (auto& r : stmt.refs)
        r = r.substituted(b.var, AffineExpr::variable(a.var));
      a.body.push_back(std::move(n));
    }
    scope.erase(scope.begin() + static_cast<std::ptrdiff_t>(i + 1));
    ++fused;
    // Stay at i: the fused loop may merge with the next one too.
  }
  return fused;
}

}  // namespace

std::size_t apply_fusion(ir::Program& p, TransformLog* log) {
  return fuse_scope(p, p.top(), log);
}

std::size_t apply_fusion(ir::Program& p, LoopNode& root, TransformLog* log) {
  return fuse_scope(p, root.body, log);
}

std::size_t apply_distribution(ir::Program& p,
                               std::vector<std::unique_ptr<Node>>& scope,
                               std::size_t pos) {
  SELCACHE_CHECK(pos < scope.size());
  SELCACHE_CHECK(scope[pos]->kind == NodeKind::Loop);
  auto& loop = static_cast<LoopNode&>(*scope[pos]);
  if (!stmts_only(loop) || loop.body.size() < 2) return 1;

  // Conservative legality: no cross-statement dependences at all.
  for (std::size_t i = 0; i < loop.body.size(); ++i) {
    std::vector<const Reference*> ri;
    ir::collect_refs(*loop.body[i], ri);
    for (std::size_t j = i + 1; j < loop.body.size(); ++j) {
      std::vector<const Reference*> rj;
      ir::collect_refs(*loop.body[j], rj);
      for (const auto* x : ri) {
        for (const auto* y : rj) {
          if (!x->is_write && !y->is_write) continue;
          if (!x->is_array() || !y->is_array()) return 1;  // opaque: refuse
          const AliasResult r = alias_distance(*x, loop.var, *y, loop.var);
          if (!r.analyzable || r.distance.has_value()) return 1;
        }
      }
    }
  }

  // Build one loop per statement, preserving order.
  std::vector<std::unique_ptr<Node>> pieces;
  for (std::size_t k = 0; k < loop.body.size(); ++k) {
    auto piece = std::make_unique<LoopNode>();
    piece->var = k == 0 ? loop.var
                        : p.add_var(p.var_names()[loop.var] + "_d" +
                                    std::to_string(k));
    piece->lower = loop.lower;
    piece->upper = loop.upper;
    piece->step = loop.step;
    piece->code_addr = loop.code_addr + 4 * k;
    auto stmt = std::move(loop.body[k]);
    if (k > 0) {
      auto& s = static_cast<StmtNode&>(*stmt).stmt;
      for (auto& r : s.refs)
        r = r.substituted(loop.var, AffineExpr::variable(piece->var));
    }
    piece->body.push_back(std::move(stmt));
    pieces.push_back(std::move(piece));
  }
  const std::size_t count = pieces.size();
  scope.erase(scope.begin() + static_cast<std::ptrdiff_t>(pos));
  scope.insert(scope.begin() + static_cast<std::ptrdiff_t>(pos),
               std::make_move_iterator(pieces.begin()),
               std::make_move_iterator(pieces.end()));
  return count;
}

}  // namespace selcache::transform
