// Scalar replacement (§3.2 step 2, after [4]).
//
// Two register-promotion effects are modeled:
//
//  1. Invariant hoisting: an affine array reference whose subscripts do not
//     use the innermost loop variable (temporal reuse carried by that loop)
//     is loaded/stored once per entry of the loop instead of every
//     iteration. The reference moves into a prologue (loads) or epilogue
//     (stores) statement around the innermost loop.
//
//  2. Common-reference elimination: identical references within the
//     innermost body (as produced by unroll-and-jam) collapse to one; the
//     later copies become register reads and disappear from the trace.
//
// Both shrink the number of executed memory instructions — which is exactly
// what scalar replacement buys on real hardware.
#pragma once

#include "ir/program.h"

namespace selcache::transform {

struct ScalarReplacementReport {
  std::size_t hoisted_loads = 0;
  std::size_t hoisted_stores = 0;
  std::size_t deduplicated = 0;
};

/// Structural equality of two references (used for common-reference
/// elimination; exposed for tests).
bool refs_equal(const ir::Reference& a, const ir::Reference& b);

/// Apply to every innermost loop in the subtree rooted at `root`.
ScalarReplacementReport apply_scalar_replacement(ir::Program& p,
                                                 ir::LoopNode& root);

}  // namespace selcache::transform
