// Loop fusion and loop distribution — the remaining classical loop
// restructurings of the locality-optimization toolbox ([6], [13]).
//
// FUSION merges two adjacent loops with identical constant bounds into one,
// halving loop overhead and bringing same-index accesses of the two bodies
// together in time (temporal locality across statements). Legality: for
// every cross-body reference pair on the same array with at least one
// write, the alias distance (oriented first-body -> second-body) must be
// >= 0 — the consumer iteration must not run before its producer once the
// bodies interleave.
//
// DISTRIBUTION is the inverse: split a multi-statement loop body into one
// loop per statement, enabling per-statement loop orders downstream. Legal
// when no data dependence crosses between the statement groups (a
// conservative subset of the classic acyclic-condensation criterion).
#pragma once

#include "ir/program.h"
#include "transform/transform_log.h"

namespace selcache::transform {

/// Can `a` (earlier) and `b` (later) be fused?
bool fusion_legal(const ir::LoopNode& a, const ir::LoopNode& b);

/// Fuse all adjacent fusable loop pairs in the subtree rooted at the
/// program's top level (and recursively inside loops). Returns the number
/// of fusions performed. With `log`, each fused pair is recorded (both
/// loops cloned pre-fusion) for legality certification.
std::size_t apply_fusion(ir::Program& p, TransformLog* log = nullptr);

/// Fusion restricted to the body of one region root (the pipeline's entry
/// point: only compiler regions are restructured).
std::size_t apply_fusion(ir::Program& p, ir::LoopNode& root,
                         TransformLog* log = nullptr);

/// Distribute `loop` (statements-only body) into one loop per statement,
/// if legal. The new loops replace `loop` in `scope` at position `pos`.
/// Returns the number of loops after distribution (1 = unchanged).
std::size_t apply_distribution(ir::Program& p,
                               std::vector<std::unique_ptr<ir::Node>>& scope,
                               std::size_t pos);

}  // namespace selcache::transform
