#include "transform/layout_selection.h"

#include <map>

namespace selcache::transform {

using ir::LoopNode;
using ir::Node;
using ir::NodeKind;

namespace {

struct Votes {
  std::int64_t row = 0;
  std::int64_t col = 0;
};

/// Walk carrying the innermost enclosing loop variable; each affine array
/// reference votes by where that variable appears in its subscripts.
void collect_votes(const ir::Program& p, const Node& n,
                   ir::VarId innermost_var,
                   std::map<ir::ArrayId, Votes>& votes) {
  if (n.kind == NodeKind::Loop) {
    const auto& loop = static_cast<const LoopNode&>(n);
    // This loop becomes the innermost for its direct statements only if no
    // deeper loop encloses them — handled naturally by passing loop.var down.
    for (const auto& child : loop.body)
      collect_votes(p, *child, loop.var, votes);
    return;
  }
  if (n.kind != NodeKind::Stmt || innermost_var == ir::kInvalidVar) return;
  for (const auto& r : static_cast<const ir::StmtNode&>(n).stmt.refs) {
    const auto* arr = std::get_if<ir::Reference::Array>(&r.target);
    if (arr == nullptr || arr->subs.size() < 2) continue;
    bool affine = true;
    for (const auto& s : arr->subs)
      if (!s.is_affine()) affine = false;
    if (!affine) continue;

    const auto coeff_in_dim = [&](std::size_t d) {
      return std::get<ir::Subscript::Affine>(arr->subs[d].value)
          .expr.coeff(innermost_var);
    };
    const std::size_t last = arr->subs.size() - 1;
    const std::int64_t c_first = coeff_in_dim(0);
    const std::int64_t c_last = coeff_in_dim(last);
    // A unit-stride walk along a dimension is a vote for the layout that
    // makes that dimension contiguous.
    if (c_last != 0 && c_first == 0) ++votes[arr->id].row;
    if (c_first != 0 && c_last == 0) ++votes[arr->id].col;
  }
}

}  // namespace

std::size_t select_layouts(ir::Program& p,
                           std::span<LoopNode* const> regions) {
  std::map<ir::ArrayId, Votes> votes;
  for (const auto* root : regions)
    collect_votes(p, *root, ir::kInvalidVar, votes);

  std::size_t changed = 0;
  for (const auto& [id, v] : votes) {
    ir::ArrayDecl& a = p.array(id);
    const ir::Layout want =
        v.col > v.row ? ir::Layout::ColMajor : ir::Layout::RowMajor;
    if (a.layout != want) {
      a.layout = want;
      ++changed;
    }
  }
  return changed;
}

}  // namespace selcache::transform
