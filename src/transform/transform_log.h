// Transformation audit log.
//
// When OptimizeOptions.log is set, the pipeline records every loop
// transformation it applies together with a deep clone of the affected
// subtree taken immediately *before* the rewrite (the pre-image) and the
// parameters of the rewrite (permutation, tile sizes, unroll factor). The
// verify subsystem's legality linter re-runs the dependence analysis on the
// pre-images and independently certifies that each recorded transform was
// legal — a second opinion that does not trust the transform's own guards.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace selcache::transform {

enum class TransformKind { Fusion, Interchange, Tiling, UnrollJam };

inline const char* to_string(TransformKind k) {
  switch (k) {
    case TransformKind::Fusion: return "fusion";
    case TransformKind::Interchange: return "interchange";
    case TransformKind::Tiling: return "tiling";
    case TransformKind::UnrollJam: return "unroll-jam";
  }
  return "?";
}

struct TransformRecord {
  TransformKind kind = TransformKind::Interchange;
  /// Human-readable site, e.g. "band (j, i)" — used in diagnostics.
  std::string site;
  /// Clone of the transformed subtree taken before the rewrite. For Fusion
  /// this is the first (earlier) loop; pre_image_b holds the second.
  std::unique_ptr<ir::Node> pre_image;
  std::unique_ptr<ir::Node> pre_image_b;
  /// Pre-image band induction variables, outermost first.
  std::vector<ir::VarId> band_vars;
  /// Interchange: perm[k] = pre-image band index of the loop placed at
  /// depth k after the rewrite.
  std::vector<std::size_t> perm;
  /// UnrollJam: factor actually applied (>= 2).
  std::uint32_t factor = 1;
  /// Tiling: tile sizes chosen for the outer/inner pair.
  std::int64_t tile_outer = 0;
  std::int64_t tile_inner = 0;
};

struct TransformLog {
  std::vector<TransformRecord> records;
};

}  // namespace selcache::transform
