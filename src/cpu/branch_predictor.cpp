#include "cpu/branch_predictor.h"

namespace selcache::cpu {

BimodalPredictor::BimodalPredictor(std::uint32_t entries) {
  SELCACHE_CHECK(entries > 0);
  table_.assign(entries, Counter2Bit(3, 2));  // start weakly taken
}

bool BimodalPredictor::predict_and_train(Addr pc, bool taken) {
  Counter2Bit& c = table_[index(pc)];
  const bool predicted = c.upper_half();
  if (taken) {
    c.increment();
  } else {
    c.decrement();
  }
  const bool correct = (predicted == taken);
  stats_.record(correct);
  return correct;
}

void BimodalPredictor::export_stats(StatSet& out) const {
  out.add("bpred.correct", stats_.hits);
  out.add("bpred.mispredicted", stats_.misses);
}

}  // namespace selcache::cpu
