#include "cpu/branch_predictor.h"

namespace selcache::cpu {

BimodalPredictor::BimodalPredictor(std::uint32_t entries) {
  SELCACHE_CHECK(entries > 0);
  table_.assign(entries, Counter2Bit(3, 2));  // start weakly taken
}

void BimodalPredictor::export_stats(StatSet& out) const {
  out.add("bpred.correct", stats_.hits);
  out.add("bpred.mispredicted", stats_.misses);
}

}  // namespace selcache::cpu
