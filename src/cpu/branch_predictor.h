// Bimodal branch predictor: a table of 2-bit saturating counters indexed by
// PC (Table 1: "bi-modal with 2048 entries").
#pragma once

#include <vector>

#include "support/check.h"
#include "support/saturating.h"
#include "support/stats.h"
#include "support/types.h"

namespace selcache::cpu {

class BimodalPredictor {
 public:
  explicit BimodalPredictor(std::uint32_t entries = 2048);

  /// Predict the branch at `pc`, then train with the actual outcome.
  /// Returns true iff the prediction was correct. Inline: one table access
  /// per simulated branch.
  bool predict_and_train(Addr pc, bool taken) {
    Counter2Bit& c = table_[index(pc)];
    const bool predicted = c.upper_half();
    if (taken) {
      c.increment();
    } else {
      c.decrement();
    }
    const bool correct = (predicted == taken);
    stats_.record(correct);
    return correct;
  }

  const HitMiss& stats() const { return stats_; }  // hits = correct
  double accuracy() const { return stats_.hit_rate(); }
  void export_stats(StatSet& out) const;

 private:
  std::uint32_t index(Addr pc) const {
    // Drop the low bits (instruction alignment) before hashing.
    return static_cast<std::uint32_t>((pc >> 2) % table_.size());
  }

  std::vector<Counter2Bit> table_;
  HitMiss stats_;
};

}  // namespace selcache::cpu
