#include "cpu/timing_model.h"

#include <algorithm>

#include "support/bitutil.h"

namespace selcache::cpu {

using memsys::AccessKind;

TimingModel::TimingModel(CpuConfig cfg, memsys::Hierarchy& hierarchy,
                         hw::Controller& controller)
    : cfg_(cfg),
      hierarchy_(hierarchy),
      controller_(controller),
      bpred_(cfg.bimodal_entries) {
  SELCACHE_CHECK(cfg_.issue_width > 0);
  SELCACHE_CHECK(cfg_.memory_ports > 0);
  l1i_shift_ = log2_exact(hierarchy.config().l1i.block_size);
}

void TimingModel::charge_memory_slow(Cycle extra, bool dependent) {
  const Cycle now = cycles();
  if (now >= shadow_end_) inflight_ = 0;

  if (dependent) {
    // Address-dependent chain: wait out any outstanding shadow, then pay in
    // full. No MLP for pointer chasing.
    if (now < shadow_end_) mem_stall_ += shadow_end_ - now;
    mem_stall_ += extra;
    shadow_end_ = cycles();
    inflight_ = 0;
    ++serialized_misses_;
    return;
  }

  const Cycle hide = hide_window();
  if (inflight_ == 0) {
    // First miss of a shadow: the RUU keeps issuing under it, hiding up to
    // `hide` cycles; the remainder is exposed.
    const Cycle charged = extra > hide ? extra - hide : 0;
    mem_stall_ += charged;
    shadow_end_ = cycles() + (extra - charged);
    inflight_ = 1;
    ++serialized_misses_;
    return;
  }

  if (inflight_ < cfg_.memory_ports) {
    // Overlaps with the outstanding miss(es): only the bandwidth floor is
    // exposed, and the shadow extends.
    ++inflight_;
    ++overlapped_misses_;
    mem_stall_ += std::min(extra, cfg_.overlap_bandwidth_cycles);
    const Cycle completion = now + extra;
    if (completion > shadow_end_) shadow_end_ = completion;
    return;
  }

  // All memory ports busy: stall until the shadow drains, then behave like
  // a fresh first-miss.
  mem_stall_ += shadow_end_ - now;
  const Cycle charged = extra > hide ? extra - hide : 0;
  mem_stall_ += charged;
  shadow_end_ = cycles() + (extra - charged);
  inflight_ = 1;
  ++serialized_misses_;
}

void TimingModel::export_stats(StatSet& out) const {
  out.add("cpu.instructions", instructions_);
  out.add("cpu.cycles", cycles());
  out.add("cpu.mem_stall_cycles", mem_stall_);
  out.add("cpu.branch_penalty_cycles", branch_stall_);
  out.add("cpu.toggle_stall_cycles", toggle_stall_);
  out.add("cpu.overlapped_misses", overlapped_misses_);
  out.add("cpu.serialized_misses", serialized_misses_);
  bpred_.export_stats(out);
}

}  // namespace selcache::cpu
