#include "cpu/timing_model.h"

#include <algorithm>

#include "support/bitutil.h"

namespace selcache::cpu {

using memsys::AccessKind;

TimingModel::TimingModel(CpuConfig cfg, memsys::Hierarchy& hierarchy,
                         hw::Controller& controller)
    : cfg_(cfg),
      hierarchy_(hierarchy),
      controller_(controller),
      bpred_(cfg.bimodal_entries) {
  SELCACHE_CHECK(cfg_.issue_width > 0);
  SELCACHE_CHECK(cfg_.memory_ports > 0);
}

Cycle TimingModel::cycles() const {
  const Cycle issue = (slots_ + cfg_.issue_width - 1) / cfg_.issue_width;
  return issue + mem_stall_ + branch_stall_ + toggle_stall_;
}

void TimingModel::compute(std::uint64_t n) {
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Compute, 0,
                       static_cast<std::uint32_t>(n), 0});
  retire_slots(n);
}

void TimingModel::charge_memory(Cycle lat, Cycle pipelined_lat,
                                bool dependent) {
  const Cycle extra = lat > pipelined_lat ? lat - pipelined_lat : 0;
  if (extra == 0) return;

  const Cycle now = cycles();
  if (now >= shadow_end_) inflight_ = 0;

  if (dependent) {
    // Address-dependent chain: wait out any outstanding shadow, then pay in
    // full. No MLP for pointer chasing.
    if (now < shadow_end_) mem_stall_ += shadow_end_ - now;
    mem_stall_ += extra;
    shadow_end_ = cycles();
    inflight_ = 0;
    ++serialized_misses_;
    return;
  }

  const Cycle hide = hide_window();
  if (inflight_ == 0) {
    // First miss of a shadow: the RUU keeps issuing under it, hiding up to
    // `hide` cycles; the remainder is exposed.
    const Cycle charged = extra > hide ? extra - hide : 0;
    mem_stall_ += charged;
    shadow_end_ = cycles() + (extra - charged);
    inflight_ = 1;
    ++serialized_misses_;
    return;
  }

  if (inflight_ < cfg_.memory_ports) {
    // Overlaps with the outstanding miss(es): only the bandwidth floor is
    // exposed, and the shadow extends.
    ++inflight_;
    ++overlapped_misses_;
    mem_stall_ += std::min(extra, cfg_.overlap_bandwidth_cycles);
    const Cycle completion = now + extra;
    if (completion > shadow_end_) shadow_end_ = completion;
    return;
  }

  // All memory ports busy: stall until the shadow drains, then behave like
  // a fresh first-miss.
  mem_stall_ += shadow_end_ - now;
  const Cycle charged = extra > hide ? extra - hide : 0;
  mem_stall_ += charged;
  shadow_end_ = cycles() + (extra - charged);
  inflight_ = 1;
  ++serialized_misses_;
}

void TimingModel::load(Addr addr, bool dependent) {
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Load,
                       static_cast<std::uint8_t>(dependent ? 1 : 0), 0,
                       addr});
  retire_slots(1);
  controller_.tick();
  const Cycle lat = hierarchy_.access(addr, AccessKind::Load);
  charge_memory(lat, hierarchy_.config().l1d.latency, dependent);
}

void TimingModel::store(Addr addr) {
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Store, 0, 0, addr});
  retire_slots(1);
  controller_.tick();
  const Cycle lat = hierarchy_.access(addr, AccessKind::Store);
  // Stores retire through the store queue; they only expose latency when
  // the LSQ would back up. Approximate by halving the exposed latency.
  const Cycle l1 = hierarchy_.config().l1d.latency;
  const Cycle extra = lat > l1 ? (lat - l1) / 2 : 0;
  charge_memory(l1 + extra, l1, /*dependent=*/false);
}

void TimingModel::branch(Addr pc, bool taken) {
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Branch,
                       static_cast<std::uint8_t>(taken ? 1 : 0), 0, pc});
  retire_slots(1);
  if (!bpred_.predict_and_train(pc, taken))
    branch_stall_ += cfg_.mispredict_penalty;
}

void TimingModel::toggle(bool on, std::int32_t region) {
  // The captured trace stores region + 1 in `value` so a region-less toggle
  // (region -1) round-trips through the unsigned field as 0.
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Toggle,
                       static_cast<std::uint8_t>(on ? 1 : 0),
                       static_cast<std::uint32_t>(region + 1), 0});
  retire_slots(1);
  toggle_stall_ += cfg_.toggle_latency;
  controller_.toggle(on, region);
}

void TimingModel::touch_code(Addr pc, std::uint32_t n_instr) {
  if (trace_ != nullptr)
    trace_->push_back({TraceEvent::Kind::Ifetch, 0, n_instr, pc});
  if (!cfg_.model_ifetch) return;
  // 4 bytes per instruction; touch each I-cache block the group spans.
  const std::uint32_t bytes = n_instr * 4;
  const std::uint32_t bs = hierarchy_.config().l1i.block_size;
  const Addr first = block_base(pc, bs);
  const Addr last = block_base(pc + (bytes > 0 ? bytes - 1 : 0), bs);
  for (Addr a = first; a <= last; a += bs) {
    const Cycle lat = hierarchy_.access(a, AccessKind::IFetch);
    const Cycle l1 = hierarchy_.config().l1i.latency;
    // Frontend stalls are partly absorbed by the fetch queue.
    if (lat > l1) mem_stall_ += (lat - l1) / 2;
  }
}

void TimingModel::export_stats(StatSet& out) const {
  out.add("cpu.instructions", instructions_);
  out.add("cpu.cycles", cycles());
  out.add("cpu.mem_stall_cycles", mem_stall_);
  out.add("cpu.branch_penalty_cycles", branch_stall_);
  out.add("cpu.toggle_stall_cycles", toggle_stall_);
  out.add("cpu.overlapped_misses", overlapped_misses_);
  out.add("cpu.serialized_misses", serialized_misses_);
  bpred_.export_stats(out);
}

}  // namespace selcache::cpu
