// Interval-style out-of-order timing model — the stand-in for SimpleScalar's
// sim-outorder.
//
// The model charges cycles from three sources:
//   1. issue bandwidth: every instruction consumes one of `issue_width`
//      slots per cycle;
//   2. branch mispredictions: a fixed redirect penalty per miss of the
//      bimodal predictor;
//   3. exposed memory latency: each data access pays its hierarchy latency
//      beyond the pipelined L1 hit time, with bounded overlap.
//
// Overlap (memory-level parallelism) follows an interval model: while a miss
// is outstanding ("shadow"), further *independent* misses overlap with it —
// up to `memory_ports` in flight — and only extend the shadow instead of
// stalling; the first miss of a shadow is partially hidden by the RUU window
// (the out-of-order core keeps issuing ~RUU/width cycles of work under it).
// *Dependent* accesses (pointer chasing — the load's address comes from the
// previous load) serialize fully, which is what gives irregular codes their
// low MLP. This reproduces the first-order behavior the paper's results
// depend on: miss counts translate to cycles, streams get MLP, chains don't.
#pragma once

#include <vector>

#include "cpu/branch_predictor.h"
#include "hw/controller.h"
#include "memsys/hierarchy.h"

namespace selcache::cpu {

/// One recorded event of the instruction/memory stream (see
/// codegen/trace_io.h for capture/replay helpers).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Compute,  ///< value = instruction count
    Load,     ///< addr; flags bit0 = dependent
    Store,    ///< addr
    Branch,   ///< addr = pc; flags bit0 = taken
    Toggle,   ///< flags bit0 = on; value = static region id + 1 (0 = none)
    Ifetch    ///< addr = pc; value = instruction count
  };
  Kind kind = Kind::Compute;
  std::uint8_t flags = 0;
  std::uint32_t value = 0;
  Addr addr = 0;

  bool operator==(const TraceEvent&) const = default;
};
using Trace = std::vector<TraceEvent>;

struct CpuConfig {
  std::uint32_t issue_width = 4;
  std::uint32_t ruu_entries = 64;
  std::uint32_t lsq_entries = 32;
  std::uint32_t memory_ports = 2;
  std::uint32_t bimodal_entries = 2048;
  Cycle mispredict_penalty = 3;
  /// Bandwidth floor: even a fully overlapped miss occupies the L1-L2 path
  /// for this long. Bounds the MLP a miss stream can extract — without it,
  /// pathological miss inflation (e.g. rampant bypassing) would be free.
  Cycle overlap_bandwidth_cycles = 2;
  Cycle toggle_latency = 1;  ///< extra decode cycle for an ON/OFF instruction
  bool model_ifetch = true;  ///< simulate the instruction-fetch stream
};

class TimingModel {
 public:
  TimingModel(CpuConfig cfg, memsys::Hierarchy& hierarchy,
              hw::Controller& controller);

  /// `n` plain ALU instructions.
  void compute(std::uint64_t n);

  /// One load instruction. `dependent` marks address-dependent loads
  /// (pointer chasing) that cannot overlap with outstanding misses.
  void load(Addr addr, bool dependent = false);

  /// One store instruction (write-allocate; retires through the LSQ).
  void store(Addr addr);

  /// One conditional branch at `pc` with actual outcome `taken`.
  void branch(Addr pc, bool taken);

  /// One activate/deactivate instruction: flips the controller and pays the
  /// documented overhead (§4.1: "the performance overhead of ON/OFF
  /// instructions have also been taken into account"). `region` is the
  /// static source-region id the marker belongs to (-1 = unattributed).
  void toggle(bool on, std::int32_t region = -1);

  /// Fetch the code block(s) for `n_instr` instructions located at `pc`.
  void touch_code(Addr pc, std::uint32_t n_instr);

  /// Tee every subsequent event into `sink` (nullptr stops recording).
  void set_trace_sink(Trace* sink) { trace_ = sink; }

  Cycle cycles() const;
  InstrCount instructions() const { return instructions_; }
  /// Cycles lost to exposed memory latency (diagnostic).
  Cycle memory_stall_cycles() const { return mem_stall_; }
  Cycle branch_penalty_cycles() const { return branch_stall_; }

  const BimodalPredictor& predictor() const { return bpred_; }
  const CpuConfig& config() const { return cfg_; }

  void export_stats(StatSet& out) const;

 private:
  /// Cycles the RUU window can hide under a fresh miss shadow.
  Cycle hide_window() const { return cfg_.ruu_entries / cfg_.issue_width; }

  void retire_slots(std::uint64_t n) {
    slots_ += n;
    instructions_ += n;
  }

  /// Charge an access whose total latency was `lat`; `pipelined_lat` is the
  /// portion absorbed by the pipeline (L1 hit time).
  void charge_memory(Cycle lat, Cycle pipelined_lat, bool dependent);

  CpuConfig cfg_;
  memsys::Hierarchy& hierarchy_;
  hw::Controller& controller_;
  BimodalPredictor bpred_;
  Trace* trace_ = nullptr;

  std::uint64_t slots_ = 0;        ///< issued instruction slots
  Cycle mem_stall_ = 0;
  Cycle branch_stall_ = 0;
  Cycle toggle_stall_ = 0;
  InstrCount instructions_ = 0;

  Cycle shadow_end_ = 0;           ///< cycle when outstanding misses resolve
  std::uint32_t inflight_ = 0;     ///< misses overlapped in current shadow
  std::uint64_t overlapped_misses_ = 0;
  std::uint64_t serialized_misses_ = 0;
};

}  // namespace selcache::cpu
