// Interval-style out-of-order timing model — the stand-in for SimpleScalar's
// sim-outorder.
//
// The model charges cycles from three sources:
//   1. issue bandwidth: every instruction consumes one of `issue_width`
//      slots per cycle;
//   2. branch mispredictions: a fixed redirect penalty per miss of the
//      bimodal predictor;
//   3. exposed memory latency: each data access pays its hierarchy latency
//      beyond the pipelined L1 hit time, with bounded overlap.
//
// Overlap (memory-level parallelism) follows an interval model: while a miss
// is outstanding ("shadow"), further *independent* misses overlap with it —
// up to `memory_ports` in flight — and only extend the shadow instead of
// stalling; the first miss of a shadow is partially hidden by the RUU window
// (the out-of-order core keeps issuing ~RUU/width cycles of work under it).
// *Dependent* accesses (pointer chasing — the load's address comes from the
// previous load) serialize fully, which is what gives irregular codes their
// low MLP. This reproduces the first-order behavior the paper's results
// depend on: miss counts translate to cycles, streams get MLP, chains don't.
#pragma once

#include <algorithm>
#include <vector>

#include "cpu/branch_predictor.h"
#include "hw/controller.h"
#include "memsys/hierarchy.h"
#include "support/bitutil.h"

namespace selcache::cpu {

/// One recorded event of the instruction/memory stream (see
/// codegen/trace_io.h for capture/replay helpers).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Compute,  ///< value = instruction count
    Load,     ///< addr; flags bit0 = dependent
    Store,    ///< addr
    Branch,   ///< addr = pc; flags bit0 = taken
    Toggle,   ///< flags bit0 = on; value = static region id + 1 (0 = none)
    Ifetch    ///< addr = pc; value = instruction count
  };
  Kind kind = Kind::Compute;
  std::uint8_t flags = 0;
  std::uint32_t value = 0;
  Addr addr = 0;

  bool operator==(const TraceEvent&) const = default;
};
using Trace = std::vector<TraceEvent>;

struct CpuConfig {
  std::uint32_t issue_width = 4;
  std::uint32_t ruu_entries = 64;
  std::uint32_t lsq_entries = 32;
  std::uint32_t memory_ports = 2;
  std::uint32_t bimodal_entries = 2048;
  Cycle mispredict_penalty = 3;
  /// Bandwidth floor: even a fully overlapped miss occupies the L1-L2 path
  /// for this long. Bounds the MLP a miss stream can extract — without it,
  /// pathological miss inflation (e.g. rampant bypassing) would be free.
  Cycle overlap_bandwidth_cycles = 2;
  Cycle toggle_latency = 1;  ///< extra decode cycle for an ON/OFF instruction
  bool model_ifetch = true;  ///< simulate the instruction-fetch stream
};

class TimingModel {
 public:
  TimingModel(CpuConfig cfg, memsys::Hierarchy& hierarchy,
              hw::Controller& controller);

  // The six entry points are defined inline: every simulated instruction
  // passes through exactly one of them, and together with the inline
  // hierarchy hit path this keeps the whole hit-case event in one call
  // frame — the throughput floor of both the IR interpreter and the
  // trace-tape replay loop.

  /// `n` plain ALU instructions.
  void compute(std::uint64_t n) {
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Compute, 0,
                         static_cast<std::uint32_t>(n), 0});
    retire_slots(n);
  }

  /// One load instruction. `dependent` marks address-dependent loads
  /// (pointer chasing) that cannot overlap with outstanding misses.
  void load(Addr addr, bool dependent = false) {
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Load,
                         static_cast<std::uint8_t>(dependent ? 1 : 0), 0,
                         addr});
    retire_slots(1);
    controller_.tick();
    const Cycle lat = hierarchy_.access(addr, memsys::AccessKind::Load);
    charge_memory(lat, hierarchy_.config().l1d.latency, dependent);
  }

  /// One store instruction (write-allocate; retires through the LSQ).
  void store(Addr addr) {
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Store, 0, 0, addr});
    retire_slots(1);
    controller_.tick();
    const Cycle lat = hierarchy_.access(addr, memsys::AccessKind::Store);
    // Stores retire through the store queue; they only expose latency when
    // the LSQ would back up. Approximate by halving the exposed latency.
    const Cycle l1 = hierarchy_.config().l1d.latency;
    const Cycle extra = lat > l1 ? (lat - l1) / 2 : 0;
    charge_memory(l1 + extra, l1, /*dependent=*/false);
  }

  /// One conditional branch at `pc` with actual outcome `taken`.
  void branch(Addr pc, bool taken) {
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Branch,
                         static_cast<std::uint8_t>(taken ? 1 : 0), 0, pc});
    retire_slots(1);
    if (!bpred_.predict_and_train(pc, taken))
      branch_stall_ += cfg_.mispredict_penalty;
  }

  /// One activate/deactivate instruction: flips the controller and pays the
  /// documented overhead (§4.1: "the performance overhead of ON/OFF
  /// instructions have also been taken into account"). `region` is the
  /// static source-region id the marker belongs to (-1 = unattributed).
  void toggle(bool on, std::int32_t region = -1) {
    // The captured trace stores region + 1 in `value` so a region-less
    // toggle (region -1) round-trips through the unsigned field as 0.
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Toggle,
                         static_cast<std::uint8_t>(on ? 1 : 0),
                         static_cast<std::uint32_t>(region + 1), 0});
    retire_slots(1);
    toggle_stall_ += cfg_.toggle_latency;
    controller_.toggle(on, region);
  }

  /// Fetch the code block(s) for `n_instr` instructions located at `pc`.
  void touch_code(Addr pc, std::uint32_t n_instr) {
    if (trace_ != nullptr)
      trace_->push_back({TraceEvent::Kind::Ifetch, 0, n_instr, pc});
    if (!cfg_.model_ifetch) return;
    // 4 bytes per instruction; touch each I-cache block the group spans.
    // Block size is validated power-of-two, so the span bounds are shifts.
    const std::uint32_t bytes = n_instr * 4;
    const std::uint32_t bs = hierarchy_.config().l1i.block_size;
    const Addr first = (pc >> l1i_shift_) << l1i_shift_;
    const Addr end = pc + (bytes > 0 ? bytes - 1 : 0);
    const Addr last = (end >> l1i_shift_) << l1i_shift_;
    for (Addr a = first; a <= last; a += bs) {
      const Cycle lat = hierarchy_.access(a, memsys::AccessKind::IFetch);
      const Cycle l1 = hierarchy_.config().l1i.latency;
      // Frontend stalls are partly absorbed by the fetch queue.
      if (lat > l1) mem_stall_ += (lat - l1) / 2;
    }
  }

  /// Host-side prefetch of the hierarchy sets a future load/store at `addr`
  /// will probe. A pure performance hint for batched-replay lookahead — no
  /// simulator state, statistics, or trace events.
  void prefetch_data(Addr addr) const { hierarchy_.prefetch_data(addr); }

  /// Tee every subsequent event into `sink` (nullptr stops recording).
  void set_trace_sink(Trace* sink) { trace_ = sink; }

  Cycle cycles() const {
    const Cycle issue = (slots_ + cfg_.issue_width - 1) / cfg_.issue_width;
    return issue + mem_stall_ + branch_stall_ + toggle_stall_;
  }
  InstrCount instructions() const { return instructions_; }
  /// Cycles lost to exposed memory latency (diagnostic).
  Cycle memory_stall_cycles() const { return mem_stall_; }
  Cycle branch_penalty_cycles() const { return branch_stall_; }

  const BimodalPredictor& predictor() const { return bpred_; }
  const CpuConfig& config() const { return cfg_; }

  void export_stats(StatSet& out) const;

 private:
  /// Cycles the RUU window can hide under a fresh miss shadow.
  Cycle hide_window() const { return cfg_.ruu_entries / cfg_.issue_width; }

  void retire_slots(std::uint64_t n) {
    slots_ += n;
    instructions_ += n;
  }

  /// Charge an access whose total latency was `lat`; `pipelined_lat` is the
  /// portion absorbed by the pipeline (L1 hit time). Inline: the early
  /// return (fully pipelined hit) is the overwhelmingly common case.
  void charge_memory(Cycle lat, Cycle pipelined_lat, bool dependent) {
    const Cycle extra = lat > pipelined_lat ? lat - pipelined_lat : 0;
    if (extra == 0) return;
    charge_memory_slow(extra, dependent);
  }

  /// Miss accounting (interval/MLP model); out of line.
  void charge_memory_slow(Cycle extra, bool dependent);

  CpuConfig cfg_;
  unsigned l1i_shift_ = 0;  ///< log2(l1i block size); validated pow2
  memsys::Hierarchy& hierarchy_;
  hw::Controller& controller_;
  BimodalPredictor bpred_;
  Trace* trace_ = nullptr;

  std::uint64_t slots_ = 0;        ///< issued instruction slots
  Cycle mem_stall_ = 0;
  Cycle branch_stall_ = 0;
  Cycle toggle_stall_ = 0;
  InstrCount instructions_ = 0;

  Cycle shadow_end_ = 0;           ///< cycle when outstanding misses resolve
  std::uint32_t inflight_ = 0;     ///< misses overlapped in current shadow
  std::uint64_t overlapped_misses_ = 0;
  std::uint64_t serialized_misses_ = 0;
};

}  // namespace selcache::cpu
