// Text-format parser for IR programs — the inverse of ir::print for the
// executable subset, so workloads can be authored in plain text and run via
// the CLI without recompiling.
//
// Grammar (line oriented; '#' starts a comment):
//
//   program NAME
//   array  NAME DIM[xDIM...] [elem=BYTES] [pad=ELEMS] [col-major]
//   index  NAME LEN  (identity|permutation|uniform|zipf PCT|mesh HOP)
//          [range=N]          # zipf 85 means theta = 0.85
//   scalar NAME
//   chase  NAME COUNT NODE_BYTES [sequential]
//   records NAME COUNT RECORD_BYTES
//   for VAR = LO .. HI [step S] {        # bounds: integers or affine exprs
//   }
//   on | off                             # explicit ON/OFF markers
//   load  REF [, REF ...] [ops=N]        # statement forms
//   store REF [, REF ...] [ops=N]
//   stmt  RW:REF [, RW:REF ...] [ops=N]  # RW is 'ld' or 'st'
//
// REF forms:  A[i][j+1]   A[IP[i]+2]   A[i*j]   A[i/j]   s (scalar)
//             *P          *P+8         R[i].f16
//
// Affine expressions support + - and integer * on loop variables.
#pragma once

#include <string>

#include "ir/program.h"

namespace selcache::ir {

/// Parse a program from text. Throws std::logic_error with a line-numbered
/// message on any syntax or semantic error.
Program parse_program(const std::string& text);

}  // namespace selcache::ir
