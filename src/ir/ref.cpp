#include "ir/ref.h"

namespace selcache::ir {

Subscript Subscript::substituted(VarId v, const AffineExpr& e) const {
  Subscript out = *this;
  std::visit(
      [&](auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Affine>) {
          s.expr = s.expr.substituted(v, e);
        } else if constexpr (std::is_same_v<T, Product> ||
                             std::is_same_v<T, Divide>) {
          s.lhs = s.lhs.substituted(v, e);
          s.rhs = s.rhs.substituted(v, e);
        } else if constexpr (std::is_same_v<T, Indexed>) {
          s.index = s.index.substituted(v, e);
        }
      },
      out.value);
  return out;
}

bool Subscript::uses(VarId v) const {
  return std::visit(
      [&](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, Affine>) {
          return s.expr.uses(v);
        } else if constexpr (std::is_same_v<T, Product> ||
                             std::is_same_v<T, Divide>) {
          return s.lhs.uses(v) || s.rhs.uses(v);
        } else {
          return s.index.uses(v);
        }
      },
      value);
}

Reference Reference::substituted(VarId v, const AffineExpr& e) const {
  Reference out = *this;
  std::visit(
      [&](auto& t) {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, Array>) {
          for (auto& s : t.subs) s = s.substituted(v, e);
        } else if constexpr (std::is_same_v<T, Field>) {
          t.element = t.element.substituted(v, e);
        }
      },
      out.target);
  return out;
}

bool Reference::uses(VarId v) const {
  return std::visit(
      [&](const auto& t) {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, Array>) {
          for (const auto& s : t.subs)
            if (s.uses(v)) return true;
          return false;
        } else if constexpr (std::is_same_v<T, Field>) {
          return t.element.uses(v);
        } else {
          return false;
        }
      },
      target);
}

Reference load_scalar(ScalarId s) {
  return Reference{Reference::Scalar{s}, false};
}
Reference store_scalar(ScalarId s) {
  return Reference{Reference::Scalar{s}, true};
}
Reference load_array(ArrayId a, std::vector<Subscript> subs) {
  return Reference{Reference::Array{a, std::move(subs)}, false};
}
Reference store_array(ArrayId a, std::vector<Subscript> subs) {
  return Reference{Reference::Array{a, std::move(subs)}, true};
}
Reference chase(PoolId pool, std::uint32_t field_offset) {
  return Reference{Reference::Pointer{pool, field_offset}, false};
}
Reference load_field(PoolId pool, Subscript element,
                     std::uint32_t field_offset) {
  return Reference{Reference::Field{pool, std::move(element), field_offset},
                   false};
}
Reference store_field(PoolId pool, Subscript element,
                      std::uint32_t field_offset) {
  return Reference{Reference::Field{pool, std::move(element), field_offset},
                   true};
}

}  // namespace selcache::ir
