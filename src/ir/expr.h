// Affine expressions over loop induction variables.
//
// The subscript language of §2.3 distinguishes *analyzable* references
// (scalars, affine array subscripts like C[i+j][k-1]) from non-analyzable
// ones (D[i*j], E[i/j], G[IP[j]+2], pointers, struct fields). AffineExpr is
// the analyzable core: constant + sum(coeff * var).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "support/check.h"

namespace selcache::ir {

/// Identifies a loop induction variable within a Program.
using VarId = std::uint32_t;
constexpr VarId kInvalidVar = ~0u;

/// Lightweight wrapper so arithmetic operators can be overloaded safely
/// (a bare uint32_t would collide with integer arithmetic).
struct Var {
  VarId id;
};

class AffineExpr {
 public:
  AffineExpr() = default;

  static AffineExpr constant(std::int64_t c);
  static AffineExpr variable(VarId v, std::int64_t coeff = 1);

  std::int64_t constant_term() const { return constant_; }
  /// Coefficient of `v` (0 when absent).
  std::int64_t coeff(VarId v) const;
  const std::map<VarId, std::int64_t>& coeffs() const { return coeffs_; }

  bool is_constant() const { return coeffs_.empty(); }
  /// Does the expression mention `v` with a non-zero coefficient?
  bool uses(VarId v) const { return coeff(v) != 0; }

  /// Evaluate with `values[v]` giving each variable's current value.
  std::int64_t eval(std::span<const std::int64_t> values) const;

  /// Substitute variable `v` by expression `e` (used by loop transforms:
  /// tiling rewrites i -> it + ii, unrolling rewrites i -> i + k).
  AffineExpr substituted(VarId v, const AffineExpr& e) const;

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator*(std::int64_t k) const;
  AffineExpr operator+(std::int64_t k) const { return *this + constant(k); }
  AffineExpr operator-(std::int64_t k) const { return *this - constant(k); }

  bool operator==(const AffineExpr& o) const {
    return constant_ == o.constant_ && coeffs_ == o.coeffs_;
  }

  /// Render using a variable-name lookup (e.g. "2*i + j - 1").
  std::string str(std::span<const std::string> var_names) const;

 private:
  void prune();  // drop zero coefficients

  std::int64_t constant_ = 0;
  std::map<VarId, std::int64_t> coeffs_;
};

// Sugar so workload builders can write `x(i) + 2 * x(j) - 1`.
inline AffineExpr x(Var v) { return AffineExpr::variable(v.id); }
inline AffineExpr operator*(std::int64_t k, const AffineExpr& e) {
  return e * k;
}

}  // namespace selcache::ir
