#include "ir/parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "ir/builder.h"

namespace selcache::ir {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
  throw std::logic_error("parse error at line " + std::to_string(line) +
                         ": " + msg);
}

/// Minimal recursive-descent scanner over one reference/expression string.
class Cursor {
 public:
  Cursor(std::string s, std::size_t line) : s_(std::move(s)), line_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_])))
      ++pos_;
  }
  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void expect(char c) {
    if (!eat(c)) fail(line_, std::string("expected '") + c + "'");
  }
  bool eat_word(const std::string& w) {
    skip_ws();
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_'))
      ++pos_;
    if (start == pos_) fail(line_, "expected identifier");
    return s_.substr(start, pos_ - start);
  }
  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(
                                   s_[pos_])))
      ++pos_;
    if (start == pos_) fail(line_, "expected integer");
    return std::stoll(s_.substr(start, pos_ - start));
  }
  bool at_digit() {
    skip_ws();
    return pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-');
  }
  std::size_t line() const { return line_; }
  std::string rest() {
    skip_ws();
    return s_.substr(pos_);
  }

 private:
  std::string s_;
  std::size_t pos_ = 0;
  std::size_t line_;
};

struct Scope {
  std::map<std::string, VarId> vars;
  std::map<std::string, ArrayId> arrays;
  std::map<std::string, ScalarId> scalars;
  std::map<std::string, PoolId> pools;
};

/// affine := term (('+'|'-') term)*  ;  term := INT ['*' VAR] | VAR ['*' INT]
AffineExpr parse_affine(Cursor& c, const Scope& sc) {
  AffineExpr e;
  bool first = true;
  while (true) {
    std::int64_t sign = 1;
    if (c.eat('+')) {
      sign = 1;
    } else if (c.eat('-')) {
      sign = -1;
    } else if (!first) {
      break;
    }
    first = false;

    if (c.at_digit()) {
      const std::int64_t k = c.integer();
      if (c.eat('*')) {
        const std::string v = c.ident();
        auto it = sc.vars.find(v);
        if (it == sc.vars.end()) fail(c.line(), "unknown variable " + v);
        e = e + AffineExpr::variable(it->second, sign * k);
      } else {
        e = e + sign * k;
      }
    } else {
      const std::string v = c.ident();
      auto it = sc.vars.find(v);
      if (it == sc.vars.end()) fail(c.line(), "unknown variable " + v);
      std::int64_t k = 1;
      if (c.eat('*')) k = c.integer();
      e = e + AffineExpr::variable(it->second, sign * k);
    }
  }
  return e;
}

Subscript parse_subscript(Cursor& c, const Scope& sc) {
  // Indexed: IDENT '[' affine ']' [+- offset] where IDENT is an array.
  // Product/Divide: affine ('*'|'/') affine — handled by trying affine and
  // checking the next char (parse_affine already consumes VAR*INT; a
  // VAR*VAR product falls through to here).
  // Try: VAR [*/ VAR] | affine | indexed.
  const std::size_t line = c.line();
  // Lookahead: identifier followed by '[' means indexed.
  Cursor probe = c;
  if (!probe.at_digit() && probe.peek() != '+' && probe.peek() != '-') {
    const std::string name = probe.ident();
    if (probe.peek() == '[' && sc.arrays.count(name)) {
      // indexed subscript
      c = probe;
      c.expect('[');
      AffineExpr idx = parse_affine(c, sc);
      c.expect(']');
      std::int64_t off = 0;
      if (c.peek() == '+' || c.peek() == '-') off = c.integer();
      return Subscript::indexed(sc.arrays.at(name), std::move(idx), off);
    }
    if ((probe.peek() == '*' || probe.peek() == '/') &&
        sc.vars.count(name)) {
      // VAR * VAR or VAR / VAR (non-affine)
      Cursor probe2 = probe;
      const bool div = probe2.eat('/');
      if (!div) probe2.expect('*');
      if (!probe2.at_digit()) {
        const std::string rhs = probe2.ident();
        if (sc.vars.count(rhs)) {
          c = probe2;
          const AffineExpr l = AffineExpr::variable(sc.vars.at(name));
          const AffineExpr r = AffineExpr::variable(sc.vars.at(rhs));
          return div ? Subscript::divide(l, r) : Subscript::product(l, r);
        }
      }
    }
  }
  (void)line;
  return Subscript::affine(parse_affine(c, sc));
}

/// REF := '*' POOL ['+' INT] | NAME '.' 'f'INT ... | NAME '[' ... ']'+ |
///        SCALAR
Reference parse_ref(Cursor& c, const Scope& sc, bool is_write) {
  if (c.eat('*')) {
    const std::string pool = c.ident();
    auto it = sc.pools.find(pool);
    if (it == sc.pools.end()) fail(c.line(), "unknown pool " + pool);
    std::uint32_t off = 0;
    if (c.eat('+')) off = static_cast<std::uint32_t>(c.integer());
    Reference r = chase(it->second, off);
    r.is_write = is_write;
    return r;
  }
  const std::string name = c.ident();
  if (c.peek() == '[') {
    // Array or record-pool element.
    if (sc.arrays.count(name)) {
      std::vector<Subscript> subs;
      while (c.eat('[')) {
        subs.push_back(parse_subscript(c, sc));
        c.expect(']');
      }
      Reference r = load_array(sc.arrays.at(name), std::move(subs));
      r.is_write = is_write;
      return r;
    }
    if (sc.pools.count(name)) {
      c.expect('[');
      Subscript elem = parse_subscript(c, sc);
      c.expect(']');
      std::uint32_t off = 0;
      if (c.eat('.')) {
        const std::string field = c.ident();
        if (field.size() < 2 || field[0] != 'f')
          fail(c.line(), "field must look like f<offset>");
        off = static_cast<std::uint32_t>(std::stoul(field.substr(1)));
      }
      Reference r = load_field(sc.pools.at(name), std::move(elem), off);
      r.is_write = is_write;
      return r;
    }
    fail(c.line(), "unknown array/pool " + name);
  }
  auto it = sc.scalars.find(name);
  if (it == sc.scalars.end()) fail(c.line(), "unknown scalar " + name);
  Reference r = load_scalar(it->second);
  r.is_write = is_write;
  return r;
}

std::vector<std::string> split_commas(const std::string& s) {
  // Split on commas at bracket depth 0.
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char ch : s) {
    if (ch == '[') ++depth;
    if (ch == ']') --depth;
    if (ch == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Extract a trailing "ops=N" clause; returns remaining text.
std::string take_ops(const std::string& s, std::uint32_t* ops) {
  const auto pos = s.rfind("ops=");
  if (pos == std::string::npos) return s;
  *ops = static_cast<std::uint32_t>(std::stoul(s.substr(pos + 4)));
  std::string rest = s.substr(0, pos);
  while (!rest.empty() && (rest.back() == ' ' || rest.back() == ','))
    rest.pop_back();
  return rest;
}

}  // namespace

Program parse_program(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;

  std::unique_ptr<ProgramBuilder> b;
  Scope sc;
  std::size_t open_loops = 0;

  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments and whitespace.
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    std::size_t a = raw.find_first_not_of(" \t\r");
    if (a == std::string::npos) continue;
    std::size_t z = raw.find_last_not_of(" \t\r");
    std::string line = raw.substr(a, z - a + 1);

    Cursor c(line, lineno);
    if (c.eat_word("program")) {
      if (b) fail(lineno, "duplicate 'program'");
      b = std::make_unique<ProgramBuilder>(c.ident());
      continue;
    }
    if (!b) fail(lineno, "first directive must be 'program NAME'");

    if (c.eat_word("array")) {
      const std::string name = c.ident();
      std::vector<std::int64_t> dims{c.integer()};
      while (c.eat('x')) dims.push_back(c.integer());
      std::uint32_t esz = 8;
      std::int64_t pad = 0;
      bool col = false;
      while (!c.done()) {
        if (c.eat_word("elem=")) {
          esz = static_cast<std::uint32_t>(c.integer());
        } else if (c.eat_word("pad=")) {
          pad = c.integer();
        } else if (c.eat_word("col-major")) {
          col = true;
        } else {
          fail(lineno, "unknown array attribute: " + c.rest());
        }
      }
      const ArrayId id = b->array(name, dims, esz, pad);
      if (col) b->program().array(id).layout = Layout::ColMajor;
      sc.arrays[name] = id;
      continue;
    }
    if (c.eat_word("index")) {
      const std::string name = c.ident();
      const std::int64_t len = c.integer();
      ArrayDecl::Content kind = ArrayDecl::Content::Identity;
      double param = 0;
      if (c.eat_word("identity")) {
        kind = ArrayDecl::Content::Identity;
      } else if (c.eat_word("permutation")) {
        kind = ArrayDecl::Content::Permutation;
      } else if (c.eat_word("uniform")) {
        kind = ArrayDecl::Content::Uniform;
      } else if (c.eat_word("zipf")) {
        kind = ArrayDecl::Content::Zipf;
        param = static_cast<double>(c.integer()) / 100.0;  // zipf 80 = 0.80
      } else if (c.eat_word("mesh")) {
        kind = ArrayDecl::Content::Mesh;
        param = static_cast<double>(c.integer());
      } else {
        fail(lineno, "unknown index content kind");
      }
      std::int64_t range = 0;
      if (c.eat_word("range=")) range = c.integer();
      sc.arrays[name] = b->index_array(name, len, kind, param, range);
      continue;
    }
    if (c.eat_word("scalar")) {
      const std::string name = c.ident();
      sc.scalars[name] = b->scalar(name);
      continue;
    }
    if (c.eat_word("chase")) {
      const std::string name = c.ident();
      const std::int64_t count = c.integer();
      const std::uint32_t esz = static_cast<std::uint32_t>(c.integer());
      const bool sequential = c.eat_word("sequential");
      sc.pools[name] = b->chase_pool(name, count, esz, !sequential);
      continue;
    }
    if (c.eat_word("records")) {
      const std::string name = c.ident();
      const std::int64_t count = c.integer();
      const std::uint32_t esz = static_cast<std::uint32_t>(c.integer());
      sc.pools[name] = b->record_pool(name, count, esz);
      continue;
    }
    if (c.eat_word("for")) {
      const std::string var = c.ident();
      c.expect('=');
      AffineExpr lo = parse_affine(c, sc);
      c.expect('.');
      c.expect('.');
      AffineExpr hi = parse_affine(c, sc);
      std::int64_t step = 1;
      if (c.eat_word("step")) step = c.integer();
      c.expect('{');
      const Var v = b->begin_loop(var, std::move(lo), std::move(hi), step);
      sc.vars[var] = v.id;
      ++open_loops;
      continue;
    }
    if (line == "}") {
      if (open_loops == 0) fail(lineno, "unmatched '}'");
      b->end_loop();
      --open_loops;
      continue;
    }
    if (line == "on" || line == "off") {
      b->toggle(line == "on");
      continue;
    }
    if (c.eat_word("load") || c.eat_word("store") || c.eat_word("stmt")) {
      const bool is_stmt = line.rfind("stmt", 0) == 0;
      const bool default_write = line.rfind("store", 0) == 0;
      std::uint32_t ops = 1;
      const std::string body = take_ops(c.rest(), &ops);
      std::vector<Reference> refs;
      for (const std::string& piece : split_commas(body)) {
        Cursor rc(piece, lineno);
        bool w = default_write;
        if (is_stmt) {
          if (rc.eat_word("st:")) {
            w = true;
          } else if (rc.eat_word("ld:")) {
            w = false;
          } else {
            fail(lineno, "stmt refs need ld:/st: prefixes");
          }
        }
        refs.push_back(parse_ref(rc, sc, w));
      }
      b->stmt(std::move(refs), ops);
      continue;
    }
    fail(lineno, "unrecognized directive: " + line);
  }

  if (!b) fail(lineno, "empty program");
  if (open_loops != 0) fail(lineno, "unclosed loop at end of input");
  return b->finish();
}

}  // namespace selcache::ir
