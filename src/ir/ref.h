// Memory references — the unit of the paper's analyzable / non-analyzable
// classification (§2.3).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "ir/expr.h"

namespace selcache::ir {

using ArrayId = std::uint32_t;
using ScalarId = std::uint32_t;
using PoolId = std::uint32_t;  ///< pointer pools and record pools

/// One array subscript dimension.
struct Subscript {
  struct Affine {
    AffineExpr expr;
  };
  /// Non-affine product of loop variables, e.g. F[3][i*j].
  struct Product {
    AffineExpr lhs, rhs;
  };
  /// Non-affine quotient, e.g. E[i/j]. Division by zero evaluates as the
  /// numerator (matches the "undefined but harmless" synthesis need).
  struct Divide {
    AffineExpr lhs, rhs;
  };
  /// Indexed (subscripted-subscript) access, e.g. G[IP[j] + 2]: the value
  /// loaded from index_array[index] plus a constant offset.
  struct Indexed {
    ArrayId index_array;
    AffineExpr index;
    std::int64_t offset = 0;
  };

  std::variant<Affine, Product, Divide, Indexed> value;

  bool is_affine() const { return std::holds_alternative<Affine>(value); }
  bool is_indexed() const { return std::holds_alternative<Indexed>(value); }

  static Subscript affine(AffineExpr e) { return {Affine{std::move(e)}}; }
  static Subscript product(AffineExpr l, AffineExpr r) {
    return {Product{std::move(l), std::move(r)}};
  }
  static Subscript divide(AffineExpr l, AffineExpr r) {
    return {Divide{std::move(l), std::move(r)}};
  }
  static Subscript indexed(ArrayId ia, AffineExpr idx, std::int64_t off = 0) {
    return {Indexed{ia, std::move(idx), off}};
  }

  /// Apply var -> expr substitution to every affine component (transforms).
  Subscript substituted(VarId v, const AffineExpr& e) const;
  /// Does any component use variable `v`?
  bool uses(VarId v) const;
};

/// A single memory reference inside a statement.
struct Reference {
  struct Scalar {
    ScalarId id;
  };
  struct Array {
    ArrayId id;
    std::vector<Subscript> subs;  ///< one per declared dimension
  };
  /// Pointer-chasing reference (*H, list/tree walks): each execution follows
  /// the pool's next link from the previous node. Address-dependent — the
  /// timing model serializes these loads.
  struct Pointer {
    PoolId pool;
    std::uint32_t field_offset = 0;
  };
  /// Struct-field access J.field / K->field: record selected by a subscript
  /// into a pool of fixed-size records.
  struct Field {
    PoolId pool;
    Subscript element;
    std::uint32_t field_offset = 0;
  };

  std::variant<Scalar, Array, Pointer, Field> target;
  bool is_write = false;

  bool is_array() const { return std::holds_alternative<Array>(target); }
  bool is_scalar() const { return std::holds_alternative<Scalar>(target); }
  bool is_pointer() const { return std::holds_alternative<Pointer>(target); }
  bool is_field() const { return std::holds_alternative<Field>(target); }

  Reference substituted(VarId v, const AffineExpr& e) const;
  bool uses(VarId v) const;
};

// Convenience constructors used throughout the workloads and tests.
Reference load_scalar(ScalarId s);
Reference store_scalar(ScalarId s);
Reference load_array(ArrayId a, std::vector<Subscript> subs);
Reference store_array(ArrayId a, std::vector<Subscript> subs);
Reference chase(PoolId pool, std::uint32_t field_offset = 0);
Reference load_field(PoolId pool, Subscript element,
                     std::uint32_t field_offset = 0);
Reference store_field(PoolId pool, Subscript element,
                      std::uint32_t field_offset = 0);

}  // namespace selcache::ir
