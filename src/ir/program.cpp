#include "ir/program.h"

namespace selcache::ir {

std::unique_ptr<Node> LoopNode::clone() const {
  auto out = std::make_unique<LoopNode>();
  out->var = var;
  out->lower = lower;
  out->upper = upper;
  out->step = step;
  out->code_addr = code_addr;
  out->body.reserve(body.size());
  for (const auto& child : body) out->body.push_back(child->clone());
  return out;
}

VarId Program::add_var(std::string var_name) {
  var_names_.push_back(std::move(var_name));
  return static_cast<VarId>(var_names_.size() - 1);
}

ArrayId Program::add_array(ArrayDecl d) {
  SELCACHE_CHECK_MSG(!d.dims.empty(), d.name + ": array needs dimensions");
  SELCACHE_CHECK_MSG(d.elem_size > 0, d.name + ": zero element size");
  arrays_.push_back(std::move(d));
  return static_cast<ArrayId>(arrays_.size() - 1);
}

ScalarId Program::add_scalar(ScalarDecl d) {
  scalars_.push_back(std::move(d));
  return static_cast<ScalarId>(scalars_.size() - 1);
}

PoolId Program::add_pool(PoolDecl d) {
  SELCACHE_CHECK_MSG(d.count > 0, d.name + ": empty pool");
  pools_.push_back(std::move(d));
  return static_cast<PoolId>(pools_.size() - 1);
}

Program Program::clone() const {
  Program out(name_);
  out.var_names_ = var_names_;
  out.arrays_ = arrays_;
  out.scalars_ = scalars_;
  out.pools_ = pools_;
  out.top_.reserve(top_.size());
  for (const auto& n : top_) out.top_.push_back(n->clone());
  return out;
}

namespace {

template <typename NodeT, typename Fn>
void visit_impl(NodeT& n, const Fn& fn) {
  fn(n);
  if (n.kind == NodeKind::Loop) {
    auto& loop = static_cast<
        std::conditional_t<std::is_const_v<NodeT>, const LoopNode, LoopNode>&>(
        n);
    for (auto& child : loop.body) visit_impl(*child, fn);
  }
}

}  // namespace

void Program::visit(const std::function<void(const Node&)>& fn) const {
  for (const auto& n : top_) visit_impl(*n, fn);
}

void Program::visit(const std::function<void(Node&)>& fn) {
  for (auto& n : top_) visit_impl(*n, fn);
}

std::vector<const LoopNode*> Program::loops() const {
  std::vector<const LoopNode*> out;
  visit([&](const Node& n) {
    if (n.kind == NodeKind::Loop) out.push_back(static_cast<const LoopNode*>(&n));
  });
  return out;
}

std::vector<LoopNode*> Program::loops() {
  std::vector<LoopNode*> out;
  visit([&](Node& n) {
    if (n.kind == NodeKind::Loop) out.push_back(static_cast<LoopNode*>(&n));
  });
  return out;
}

std::size_t Program::static_ref_count() const {
  std::size_t n = 0;
  visit([&](const Node& node) {
    if (node.kind == NodeKind::Stmt)
      n += static_cast<const StmtNode&>(node).stmt.refs.size();
  });
  return n;
}

void collect_refs(const Node& n, std::vector<const Reference*>& out) {
  if (n.kind == NodeKind::Stmt) {
    for (const auto& r : static_cast<const StmtNode&>(n).stmt.refs)
      out.push_back(&r);
  } else if (n.kind == NodeKind::Loop) {
    for (const auto& child : static_cast<const LoopNode&>(n).body)
      collect_refs(*child, out);
  }
}

std::vector<const LoopNode*> child_loops(
    const std::vector<std::unique_ptr<Node>>& body) {
  std::vector<const LoopNode*> out;
  for (const auto& n : body)
    if (n->kind == NodeKind::Loop)
      out.push_back(static_cast<const LoopNode*>(n.get()));
  return out;
}

bool is_perfect_nest(const LoopNode& loop) {
  const LoopNode* cur = &loop;
  while (true) {
    bool has_loop = false;
    for (const auto& n : cur->body)
      if (n->kind == NodeKind::Loop) has_loop = true;
    if (!has_loop) return true;  // innermost: any statements are fine
    if (cur->body.size() != 1 || cur->body[0]->kind != NodeKind::Loop)
      return false;
    cur = static_cast<const LoopNode*>(cur->body[0].get());
  }
}

std::vector<LoopNode*> perfect_nest_band(LoopNode& root) {
  std::vector<LoopNode*> band{&root};
  LoopNode* cur = &root;
  while (cur->body.size() == 1 && cur->body[0]->kind == NodeKind::Loop) {
    cur = static_cast<LoopNode*>(cur->body[0].get());
    band.push_back(cur);
  }
  return band;
}

}  // namespace selcache::ir
