// A straight-line statement: an ordered list of memory references plus a
// count of pure-compute instructions. The trace engine executes references
// in order (loads feed the computation, stores retire it).
#pragma once

#include <string>
#include <vector>

#include "ir/ref.h"

namespace selcache::ir {

struct Stmt {
  std::vector<Reference> refs;
  /// ALU instructions executed alongside the references.
  std::uint32_t compute_ops = 1;
  /// Synthetic code address; assigned by the builder so distinct statements
  /// live at distinct I-cache blocks. 0 = assign automatically.
  std::uint64_t code_addr = 0;
  std::string label;

  std::uint32_t instruction_count() const {
    return compute_ops + static_cast<std::uint32_t>(refs.size());
  }
};

}  // namespace selcache::ir
