#include "ir/expr.h"

#include <sstream>

namespace selcache::ir {

AffineExpr AffineExpr::constant(std::int64_t c) {
  AffineExpr e;
  e.constant_ = c;
  return e;
}

AffineExpr AffineExpr::variable(VarId v, std::int64_t coeff) {
  AffineExpr e;
  if (coeff != 0) e.coeffs_[v] = coeff;
  return e;
}

std::int64_t AffineExpr::coeff(VarId v) const {
  auto it = coeffs_.find(v);
  return it == coeffs_.end() ? 0 : it->second;
}

std::int64_t AffineExpr::eval(std::span<const std::int64_t> values) const {
  std::int64_t r = constant_;
  for (const auto& [v, c] : coeffs_) {
    SELCACHE_CHECK_MSG(v < values.size(), "variable out of scope in eval");
    r += c * values[v];
  }
  return r;
}

AffineExpr AffineExpr::substituted(VarId v, const AffineExpr& e) const {
  const std::int64_t c = coeff(v);
  if (c == 0) return *this;
  AffineExpr out = *this;
  out.coeffs_.erase(v);
  return out + e * c;
}

void AffineExpr::prune() {
  for (auto it = coeffs_.begin(); it != coeffs_.end();)
    it = (it->second == 0) ? coeffs_.erase(it) : std::next(it);
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  AffineExpr r = *this;
  r.constant_ += o.constant_;
  for (const auto& [v, c] : o.coeffs_) r.coeffs_[v] += c;
  r.prune();
  return r;
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  AffineExpr r = *this;
  r.constant_ -= o.constant_;
  for (const auto& [v, c] : o.coeffs_) r.coeffs_[v] -= c;
  r.prune();
  return r;
}

AffineExpr AffineExpr::operator*(std::int64_t k) const {
  AffineExpr r;
  if (k == 0) return r;
  r.constant_ = constant_ * k;
  r.coeffs_ = coeffs_;
  for (auto& [v, c] : r.coeffs_) c *= k;
  return r;
}

std::string AffineExpr::str(std::span<const std::string> var_names) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [v, c] : coeffs_) {
    const std::string name =
        v < var_names.size() ? var_names[v] : "v" + std::to_string(v);
    if (first) {
      if (c == -1)
        os << '-';
      else if (c != 1)
        os << c << '*';
      os << name;
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
      const std::int64_t a = c < 0 ? -c : c;
      if (a != 1) os << a << '*';
      os << name;
    }
  }
  if (first) {
    os << constant_;
  } else if (constant_ != 0) {
    os << (constant_ < 0 ? " - " : " + ")
       << (constant_ < 0 ? -constant_ : constant_);
  }
  return os.str();
}

}  // namespace selcache::ir
