// Fluent construction of IR programs — the API the synthetic workloads and
// the tests use.
//
//   ProgramBuilder b("example");
//   auto U = b.array("U", {N, N});
//   auto i = b.begin_loop("i", 0, N);
//   auto j = b.begin_loop("j", 0, N);
//   b.stmt({ir::load_array(U, {b.sub(j), b.sub(i)})}, /*ops=*/2);
//   b.end_loop();
//   b.end_loop();
//   ir::Program p = b.finish();
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace selcache::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : prog_(std::move(name)) {}

  // ---- declarations -------------------------------------------------------
  ArrayId array(std::string name, std::vector<std::int64_t> dims,
                std::uint32_t elem_size = 8, std::int64_t pad_elems = 0);
  /// 1-D integer array whose contents the data environment synthesizes —
  /// the subscript source for indexed references.
  ArrayId index_array(std::string name, std::int64_t length,
                      ArrayDecl::Content content, double param = 0.0,
                      std::int64_t range = 0);
  ScalarId scalar(std::string name);
  PoolId chase_pool(std::string name, std::int64_t nodes,
                    std::uint32_t node_size, bool shuffled = true);
  PoolId record_pool(std::string name, std::int64_t records,
                     std::uint32_t record_size);

  // ---- structure ----------------------------------------------------------
  /// Open a loop `for (var = lo; var < hi; var += step)`; returns the
  /// induction variable. Bounds may reference enclosing loop variables.
  Var begin_loop(std::string var, AffineExpr lo, AffineExpr hi,
                 std::int64_t step = 1);
  Var begin_loop(std::string var, std::int64_t lo, std::int64_t hi,
                 std::int64_t step = 1);
  void end_loop();

  /// Append a statement to the innermost open scope.
  void stmt(std::vector<Reference> refs, std::uint32_t compute_ops = 1,
            std::string label = "");
  /// Append a raw Stmt (tests).
  void stmt(Stmt s);
  /// Append an explicit ON/OFF marker (tests; normally region detection
  /// inserts these).
  void toggle(bool on);

  // ---- subscript sugar ----------------------------------------------------
  Subscript sub(Var v, std::int64_t offset = 0) const {
    return Subscript::affine(x(v) + offset);
  }
  Subscript sub(AffineExpr e) const { return Subscript::affine(std::move(e)); }
  Subscript csub(std::int64_t c) const {
    return Subscript::affine(AffineExpr::constant(c));
  }

  /// Close the program: checks loop balance and assigns code addresses.
  Program finish();

  Program& program() { return prog_; }

 private:
  std::vector<std::unique_ptr<Node>>& scope();

  Program prog_;
  std::vector<LoopNode*> open_;
  bool finished_ = false;
};

}  // namespace selcache::ir
