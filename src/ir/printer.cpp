#include "ir/printer.h"

#include <sstream>

namespace selcache::ir {

namespace {

std::string sub_str(const Program& p, const Subscript& s) {
  const auto& names = p.var_names();
  return std::visit(
      [&](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Subscript::Affine>) {
          return v.expr.str(names);
        } else if constexpr (std::is_same_v<T, Subscript::Product>) {
          return "(" + v.lhs.str(names) + ")*(" + v.rhs.str(names) + ")";
        } else if constexpr (std::is_same_v<T, Subscript::Divide>) {
          return "(" + v.lhs.str(names) + ")/(" + v.rhs.str(names) + ")";
        } else {
          std::string out =
              p.array(v.index_array).name + "[" + v.index.str(names) + "]";
          if (v.offset > 0) out += "+" + std::to_string(v.offset);
          if (v.offset < 0) out += std::to_string(v.offset);
          return out;
        }
      },
      s.value);
}

void print_node(const Program& p, const Node& n, int depth,
                std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (n.kind) {
    case NodeKind::Toggle: {
      os << pad << (static_cast<const ToggleNode&>(n).on ? "HW_ON;" : "HW_OFF;")
         << "\n";
      break;
    }
    case NodeKind::Stmt: {
      const auto& s = static_cast<const StmtNode&>(n).stmt;
      os << pad;
      if (!s.label.empty()) os << s.label << ": ";
      bool first = true;
      for (const auto& r : s.refs) {
        if (!first) os << ", ";
        os << (r.is_write ? "st " : "ld ") << ref_str(p, r);
        first = false;
      }
      if (s.refs.empty()) os << "compute";
      os << "  (ops=" << s.compute_ops << ");\n";
      break;
    }
    case NodeKind::Loop: {
      const auto& l = static_cast<const LoopNode&>(n);
      const auto& names = p.var_names();
      os << pad << "for " << names[l.var] << " in [" << l.lower.str(names)
         << ", " << l.upper.str(names) << ")";
      if (l.step != 1) os << " step " << l.step;
      os << " {\n";
      for (const auto& c : l.body) print_node(p, *c, depth + 1, os);
      os << pad << "}\n";
      break;
    }
  }
}

}  // namespace

std::string ref_str(const Program& p, const Reference& r) {
  return std::visit(
      [&](const auto& t) -> std::string {
        using T = std::decay_t<decltype(t)>;
        if constexpr (std::is_same_v<T, Reference::Scalar>) {
          return p.scalar(t.id).name;
        } else if constexpr (std::is_same_v<T, Reference::Array>) {
          std::string out = p.array(t.id).name;
          for (const auto& s : t.subs) out += "[" + sub_str(p, s) + "]";
          return out;
        } else if constexpr (std::is_same_v<T, Reference::Pointer>) {
          return "*" + p.pool(t.pool).name +
                 (t.field_offset != 0 ? "+" + std::to_string(t.field_offset)
                                      : "");
        } else {
          return p.pool(t.pool).name + "[" + sub_str(p, t.element) + "].f" +
                 std::to_string(t.field_offset);
        }
      },
      r.target);
}

std::string print(const Program& p) {
  std::ostringstream os;
  os << "program " << p.name() << "\n";
  for (const auto& a : p.arrays()) {
    os << "  array " << a.name;
    for (auto d : a.dims) os << "[" << d << "]";
    os << " elem=" << a.elem_size << "B "
       << (a.layout == Layout::RowMajor ? "row-major" : "col-major");
    if (a.pad_elems != 0) os << " pad=" << a.pad_elems;
    if (a.content != ArrayDecl::Content::None) os << " (index-array)";
    os << "\n";
  }
  for (const auto& s : p.scalars()) os << "  scalar " << s.name << "\n";
  for (const auto& pl : p.pools()) {
    os << "  pool " << pl.name << " x" << pl.count << " elem=" << pl.elem_size
       << "B "
       << (pl.kind == PoolDecl::Kind::PointerChase ? "chase" : "records")
       << "\n";
  }
  for (const auto& n : p.top()) print_node(p, *n, 1, os);
  return os.str();
}

}  // namespace selcache::ir
