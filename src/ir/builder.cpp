#include "ir/builder.h"

namespace selcache::ir {

ArrayId ProgramBuilder::array(std::string name, std::vector<std::int64_t> dims,
                              std::uint32_t elem_size,
                              std::int64_t pad_elems) {
  ArrayDecl d;
  d.name = std::move(name);
  d.dims = std::move(dims);
  d.elem_size = elem_size;
  d.pad_elems = pad_elems;
  return prog_.add_array(std::move(d));
}

ArrayId ProgramBuilder::index_array(std::string name, std::int64_t length,
                                    ArrayDecl::Content content, double param,
                                    std::int64_t range) {
  ArrayDecl d;
  d.name = std::move(name);
  d.dims = {length};
  d.elem_size = 8;
  d.content = content;
  d.content_param = param;
  d.content_range = range;
  return prog_.add_array(std::move(d));
}

ScalarId ProgramBuilder::scalar(std::string name) {
  return prog_.add_scalar(ScalarDecl{std::move(name), 8});
}

PoolId ProgramBuilder::chase_pool(std::string name, std::int64_t nodes,
                                  std::uint32_t node_size, bool shuffled) {
  PoolDecl d;
  d.name = std::move(name);
  d.kind = PoolDecl::Kind::PointerChase;
  d.count = nodes;
  d.elem_size = node_size;
  d.shuffled = shuffled;
  return prog_.add_pool(std::move(d));
}

PoolId ProgramBuilder::record_pool(std::string name, std::int64_t records,
                                   std::uint32_t record_size) {
  PoolDecl d;
  d.name = std::move(name);
  d.kind = PoolDecl::Kind::Records;
  d.count = records;
  d.elem_size = record_size;
  return prog_.add_pool(std::move(d));
}

std::vector<std::unique_ptr<Node>>& ProgramBuilder::scope() {
  return open_.empty() ? prog_.top() : open_.back()->body;
}

Var ProgramBuilder::begin_loop(std::string var, AffineExpr lo, AffineExpr hi,
                               std::int64_t step) {
  SELCACHE_CHECK_MSG(step != 0, "zero loop step");
  const VarId v = prog_.add_var(std::move(var));
  auto loop = std::make_unique<LoopNode>();
  loop->var = v;
  loop->lower = std::move(lo);
  loop->upper = std::move(hi);
  loop->step = step;
  LoopNode* raw = loop.get();
  scope().push_back(std::move(loop));
  open_.push_back(raw);
  return Var{v};
}

Var ProgramBuilder::begin_loop(std::string var, std::int64_t lo,
                               std::int64_t hi, std::int64_t step) {
  return begin_loop(std::move(var), AffineExpr::constant(lo),
                    AffineExpr::constant(hi), step);
}

void ProgramBuilder::end_loop() {
  SELCACHE_CHECK_MSG(!open_.empty(), "end_loop without begin_loop");
  open_.pop_back();
}

void ProgramBuilder::stmt(std::vector<Reference> refs,
                          std::uint32_t compute_ops, std::string label) {
  Stmt s;
  s.refs = std::move(refs);
  s.compute_ops = compute_ops;
  s.label = std::move(label);
  stmt(std::move(s));
}

void ProgramBuilder::stmt(Stmt s) {
  scope().push_back(std::make_unique<StmtNode>(std::move(s)));
}

void ProgramBuilder::toggle(bool on) {
  scope().push_back(std::make_unique<ToggleNode>(on));
}

Program ProgramBuilder::finish() {
  SELCACHE_CHECK_MSG(open_.empty(), "unclosed loop at finish()");
  SELCACHE_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;

  // Assign synthetic code addresses: statements and loop back-edges get
  // consecutive I-space so distinct code has distinct I-cache blocks.
  std::uint64_t pc = 0x400000;
  prog_.visit([&pc](Node& n) {
    if (n.kind == NodeKind::Stmt) {
      auto& sn = static_cast<StmtNode&>(n);
      if (sn.stmt.code_addr == 0) {
        sn.stmt.code_addr = pc;
        pc += 4ull * sn.stmt.instruction_count();
      }
    } else if (n.kind == NodeKind::Loop) {
      auto& ln = static_cast<LoopNode&>(n);
      if (ln.code_addr == 0) {
        ln.code_addr = pc;
        pc += 8;  // compare + branch
      }
    }
  });
  return std::move(prog_);
}

}  // namespace selcache::ir
