#include "ir/stmt.h"

// Stmt is header-only today; TU anchors the target.
namespace selcache::ir {}
