// Human-readable program dumps for tests, examples, and debugging.
#pragma once

#include <string>

#include "ir/program.h"

namespace selcache::ir {

/// C-like rendering of one reference, e.g. "U[i][j+1]", "*H", "T.f16",
/// "G[IP[j]+2]".
std::string ref_str(const Program& p, const Reference& r);

/// Full program listing: declarations, loops (indented), statements with
/// their references, and ON/OFF markers.
std::string print(const Program& p);

}  // namespace selcache::ir
