// Whole-program IR: a forest of loops / statements / ON-OFF markers plus
// declaration tables for arrays, scalars, and pools.
//
// Programs are deep trees of owned nodes. Transformations restructure the
// tree in place (interchange swaps loop headers, tiling inserts controller
// loops); clone() provides the deep copies needed to keep base and optimized
// variants of the same workload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace selcache::ir {

enum class NodeKind { Loop, Stmt, Toggle };

struct Node {
  explicit Node(NodeKind k) : kind(k) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  virtual std::unique_ptr<Node> clone() const = 0;

  NodeKind kind;
};

struct StmtNode final : Node {
  explicit StmtNode(Stmt s) : Node(NodeKind::Stmt), stmt(std::move(s)) {}
  std::unique_ptr<Node> clone() const override {
    return std::make_unique<StmtNode>(stmt);
  }
  Stmt stmt;
};

/// An activate/deactivate instruction inserted by region detection.
/// `region` identifies the static source region the marker delimits
/// (sequential per program, assigned at insertion; -1 = unattributed).
struct ToggleNode final : Node {
  explicit ToggleNode(bool o, std::int32_t r = -1)
      : Node(NodeKind::Toggle), on(o), region(r) {}
  std::unique_ptr<Node> clone() const override {
    return std::make_unique<ToggleNode>(on, region);
  }
  bool on;
  std::int32_t region = -1;
};

struct LoopNode final : Node {
  LoopNode() : Node(NodeKind::Loop) {}
  std::unique_ptr<Node> clone() const override;

  VarId var = kInvalidVar;
  AffineExpr lower;  ///< inclusive; may reference outer loop variables
  AffineExpr upper;  ///< exclusive; may reference outer loop variables
  std::int64_t step = 1;
  std::vector<std::unique_ptr<Node>> body;
  /// Synthetic PC of the loop's back-edge branch (for the bimodal predictor).
  std::uint64_t code_addr = 0;
};

/// Memory layout of a multi-dimensional array. The compiler's data
/// transformation step (§3.2) selects one per array.
enum class Layout { RowMajor, ColMajor };

struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;
  std::uint32_t elem_size = 8;
  Layout layout = Layout::RowMajor;
  /// Padding elements appended to the fastest-varying dimension; the paper
  /// notes its miss statistics hold "even after aggressive array padding".
  std::int64_t pad_elems = 0;

  /// For arrays used as subscript sources (index arrays): how the data
  /// environment synthesizes their integer contents.
  enum class Content {
    None,         ///< plain data array
    Identity,     ///< IP[k] = k
    Permutation,  ///< random permutation (irregular gather/scatter)
    Uniform,      ///< uniform random in [0, content_range)
    Zipf,         ///< skewed random (hot/cold) with theta = content_param
    Mesh          ///< pseudo-mesh neighbor lists (locality-clustered random)
  };
  Content content = Content::None;
  double content_param = 0.0;
  std::int64_t content_range = 0;  ///< 0 = element count of this array

  std::int64_t elements() const {
    std::int64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
  std::int64_t footprint_bytes() const {
    return (elements() + pad_elems) * static_cast<std::int64_t>(elem_size);
  }
};

struct ScalarDecl {
  std::string name;
  std::uint32_t size = 8;
};

struct PoolDecl {
  std::string name;
  enum class Kind {
    PointerChase,  ///< linked nodes walked via `chase` references
    Records        ///< array-of-records accessed via `Field` references
  };
  Kind kind = Kind::Records;
  std::int64_t count = 0;
  std::uint32_t elem_size = 32;
  /// PointerChase: whether the traversal order is a random permutation
  /// (heap-like) or sequential (freshly allocated list).
  bool shuffled = true;
};

class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  const std::string& name() const { return name_; }

  VarId add_var(std::string var_name);
  ArrayId add_array(ArrayDecl d);
  ScalarId add_scalar(ScalarDecl d);
  PoolId add_pool(PoolDecl d);

  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  std::vector<ArrayDecl>& arrays() { return arrays_; }
  const std::vector<ScalarDecl>& scalars() const { return scalars_; }
  const std::vector<PoolDecl>& pools() const { return pools_; }

  const ArrayDecl& array(ArrayId a) const { return arrays_.at(a); }
  ArrayDecl& array(ArrayId a) { return arrays_.at(a); }
  const ScalarDecl& scalar(ScalarId s) const { return scalars_.at(s); }
  const PoolDecl& pool(PoolId p) const { return pools_.at(p); }

  std::vector<std::unique_ptr<Node>>& top() { return top_; }
  const std::vector<std::unique_ptr<Node>>& top() const { return top_; }

  /// Deep copy (used to derive the optimized variant from the base code).
  Program clone() const;

  /// Pre-order traversal over all nodes.
  void visit(const std::function<void(const Node&)>& fn) const;
  void visit(const std::function<void(Node&)>& fn);

  /// All loops, pre-order.
  std::vector<const LoopNode*> loops() const;
  std::vector<LoopNode*> loops();

  /// Total statement references in the program (static count).
  std::size_t static_ref_count() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Node>> top_;
  std::vector<std::string> var_names_;
  std::vector<ArrayDecl> arrays_;
  std::vector<ScalarDecl> scalars_;
  std::vector<PoolDecl> pools_;
};

/// All references contained in the subtree rooted at `n` (statements only).
void collect_refs(const Node& n, std::vector<const Reference*>& out);

/// Immediate child loops of a node list.
std::vector<const LoopNode*> child_loops(
    const std::vector<std::unique_ptr<Node>>& body);

/// True when `loop`'s body is exactly one loop (possibly recursively down to
/// statements) — a perfectly nested band suitable for interchange/tiling.
bool is_perfect_nest(const LoopNode& loop);

/// The loops of a perfect nest from `root` inward (root first).
std::vector<LoopNode*> perfect_nest_band(LoopNode& root);

}  // namespace selcache::ir
