// Benchmark registry: name -> builder + metadata, in the paper's Table 2
// order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/program.h"

namespace selcache::workloads {

enum class Category { Regular, Irregular, Mixed };

inline const char* to_string(Category c) {
  switch (c) {
    case Category::Regular: return "regular";
    case Category::Irregular: return "irregular";
    case Category::Mixed: return "mixed";
  }
  return "?";
}

struct WorkloadInfo {
  std::string name;   ///< e.g. "Swim"
  std::string input;  ///< Table 2 "Input" column (what we synthesize)
  Category category;
  std::function<ir::Program()> build;
  /// Table 2 reference values (paper, unscaled) for EXPERIMENTS.md.
  double paper_instructions_m = 0.0;  ///< millions
  double paper_l1_miss = 0.0;         ///< percent
  double paper_l2_miss = 0.0;         ///< percent
};

/// All 13 benchmarks in Table 2 order.
const std::vector<WorkloadInfo>& all_workloads();

/// Lookup by name (throws on unknown).
const WorkloadInfo& workload(const std::string& name);

}  // namespace selcache::workloads
