// Vpenta (SpecFP92 / NAS kernel): simultaneous pentadiagonal inversion.
//
// The classic locality disaster: 2-D arrays walked along the wrong index in
// the BASE code (innermost variable subscripts the slow dimension), plus one
// transposed array (y[j][i]) that no loop order alone can fix — data-layout
// selection must flip it to column-major. Arrays are sized to overflow L2
// (Table 2: "Large enough to fill L2"; base L1 miss 52%).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;

ir::Program build_vpenta() {
  constexpr std::int64_t N = 384;  // 384x384 f64 = 1.1 MB per array

  ProgramBuilder b("vpenta");
  const auto a = b.array("a", {N, N}, 8, 8);   // staggered pads: distinct
  const auto c = b.array("c", {N, N}, 8, 24);  // set alignment per array
  const auto d = b.array("d", {N, N}, 8, 40);
  const auto f = b.array("f", {N, N}, 8, 56);
  const auto xa = b.array("x", {N, N}, 8, 72);
  const auto y = b.array("y", {N, N}, 8, 88);

  // Forward elimination sweep. BASE: j outer, i inner -> i walks the slow
  // dimension of the row-major arrays.
  {
    const auto j = b.begin_loop("j", 1, N);
    const auto i = b.begin_loop("i", 0, N);
    b.stmt({load_array(a, {b.sub(i), b.sub(j)}),
            load_array(c, {b.sub(i), b.sub(j, -1)}),
            load_array(d, {b.sub(i), b.sub(j)}),
            store_array(d, {b.sub(i), b.sub(j)})},
           3, "elim_d");
    // y is accessed transposed relative to everything else: interchange
    // cannot serve both orientations; layout selection flips y col-major.
    b.stmt({load_array(f, {b.sub(i), b.sub(j)}),
            load_array(y, {b.sub(j), b.sub(i)}),
            store_array(f, {b.sub(i), b.sub(j)})},
           2, "elim_f");
    b.end_loop();
    b.end_loop();
  }

  // Back substitution.
  {
    const auto j = b.begin_loop("jb", 0, N - 2);
    const auto i = b.begin_loop("ib", 0, N);
    b.stmt({load_array(f, {b.sub(i), b.sub(j)}),
            load_array(d, {b.sub(i), b.sub(j)}),
            load_array(xa, {b.sub(i), b.sub(j, 1)}),
            store_array(xa, {b.sub(i), b.sub(j)})},
           3, "backsub");
    b.end_loop();
    b.end_loop();
  }

  return b.finish();
}

}  // namespace selcache::workloads
