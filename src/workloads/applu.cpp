// Applu (SpecFP95): SSOR solver for the Navier-Stokes equations.
//
// The paper groups Applu with the irregular codes: its dominant loops sweep
// the grid in a data-dependent (wavefront/pivot) order. We model the lower/
// upper triangular solves as clustered-irregular traversals (Mesh-content
// index arrays: mostly near-neighbor steps with occasional jumps — real
// wavefronts have locality, but the compiler cannot prove it) over grids
// that overflow L2, plus an affine RHS update as the regular minority.
// Table 2 targets: L1 5.05%, L2 13.22%.
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::load_scalar;
using ir::ProgramBuilder;
using ir::store_array;
using ir::Subscript;
using ir::x;

ir::Program build_applu() {
  constexpr std::int64_t kCells = 90000;  // ~300x300 grid, flattened
  constexpr std::int64_t kSteps = 3;

  ProgramBuilder b("applu");
  const auto rsd = b.array("rsd", {kCells});
  const auto u = b.array("u", {kCells});
  const auto flux = b.array("flux", {kCells});
  const auto omega = b.scalar("omega");
  const auto coef = b.array("coef", {2048});  // 16 KB hot Jacobian coefficients
  const auto lorder = b.index_array("lorder", 16384,
                                    ir::ArrayDecl::Content::Mesh, /*hop=*/8,
                                    kCells);
  const auto uorder = b.index_array("uorder", 16384,
                                    ir::ArrayDecl::Content::Mesh, /*hop=*/8,
                                    kCells);

  b.begin_loop("step", 0, kSteps);

  // Lower-triangular solve: wavefront-ordered gather/update.
  {
    const auto k = b.begin_loop("blts", 0, kCells);
    b.stmt({load_scalar(omega),
            load_array(coef, {Subscript::indexed(lorder, x(k), 0)}),
            load_array(rsd, {Subscript::indexed(lorder, x(k))}),
            load_array(u, {Subscript::indexed(lorder, x(k))}),
            store_array(rsd, {Subscript::indexed(lorder, x(k))})},
           7, "lower_solve");
    b.end_loop();
  }

  // Upper-triangular solve: a different wavefront.
  {
    const auto k = b.begin_loop("buts", 0, kCells);
    b.stmt({load_scalar(omega),
            load_array(coef, {Subscript::indexed(uorder, x(k), 0)}),
            load_array(rsd, {Subscript::indexed(uorder, x(k))}),
            load_array(flux, {Subscript::indexed(uorder, x(k))}),
            store_array(u, {Subscript::indexed(uorder, x(k))})},
           7, "upper_solve");
    b.end_loop();
  }

  // RHS update: the small regular phase.
  {
    const auto c = b.begin_loop("rhs", 0, kCells);
    b.stmt({load_array(u, {b.sub(c)}),
            store_array(flux, {b.sub(c)})},
           4, "rhs_update");
    b.end_loop();
  }

  b.end_loop();  // step
  return b.finish();
}

}  // namespace selcache::workloads
