// Compress (SpecInt95): LZW compression.
//
// Per input token: sequential input-byte reads (cold stream), a skewed
// hash-table probe (the table is 768 KB — much bigger than L1, larger than
// the hot half of L2), and a hot code-table access. The streaming input and
// the cold tail of the hash table evicting the hot structures is the
// conflict pattern MAT-based bypassing was designed to stop. Table 2
// targets: L1 3.64%, L2 10.07%.
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::load_field;
using ir::load_scalar;
using ir::ProgramBuilder;
using ir::store_array;
using ir::store_field;
using ir::store_scalar;
using ir::Subscript;
using ir::x;

ir::Program build_compress() {
  constexpr std::int64_t kTokens = 65536;
  constexpr std::int64_t kHashEntries = 32768;  // 32K x 24B = 768 KB
  constexpr std::int64_t kCodes = 4096;         // 4K x 8B = 32 KB, hot

  ProgramBuilder b("compress");
  // Input/output are walked with char pointers in the original C code —
  // struct/pointer references, not analyzable subscripts.
  const auto input = b.record_pool("input", 32768, 8);   // 256 KB stream
  const auto output = b.record_pool("output", 16384, 8);
  const auto htab = b.record_pool("htab", kHashEntries, 24);
  const auto codetab = b.array("codetab", {kCodes});
  const auto freecode = b.scalar("free_ent");
  const auto hashidx = b.index_array("hashidx", 8192,
                                     ir::ArrayDecl::Content::Zipf, 1.05,
                                     kHashEntries);
  const auto codeidx = b.index_array("codeidx", 8192,
                                     ir::ArrayDecl::Content::Zipf, 0.9,
                                     kCodes);

  const auto t = b.begin_loop("tok", 0, kTokens);
  // Read the next input bytes (sequential; analyzable but outnumbered).
  b.stmt({load_field(input, Subscript::affine(ir::x(t) * 2), 0),
          load_field(input, Subscript::affine(ir::x(t) * 2 + 1), 0),
          load_scalar(freecode)},
         4, "read_input");
  // Probe the hash chain: skewed table index, two fields per probe.
  b.stmt({load_field(htab, Subscript::indexed(hashidx, x(t)), 0),
          load_field(htab, Subscript::indexed(hashidx, x(t)), 8),
          store_field(htab, Subscript::indexed(hashidx, x(t)), 16)},
         6, "hash_probe");
  // Emit code: hot code table (Zipf) + sequential output + state update.
  b.stmt({load_array(codetab, {Subscript::indexed(codeidx, x(t))}),
          store_field(output, Subscript::affine(x(t)), 0),
          store_scalar(freecode)},
         4, "emit");
  b.end_loop();

  return b.finish();
}

}  // namespace selcache::workloads
