// TPC-D queries Q1, Q3, Q6 over synthetic tables (§4.2).
//
// Q1: lineitem scan with grouped aggregation + a column-hostile pivot
//     refresh (pricing summary report).
// Q3: orders x customer join probe with per-order lineitem gathers
//     (shipping priority); customer directory fits L2 but not L1.
// Q6: lineitem scan with predicated scalar aggregation (forecast revenue);
//     the accumulator is the scalar-replacement showcase.
//
// Table rows are fixed-size records; scans touch several fields per row
// (sequential but non-analyzable struct accesses -> hardware regions, where
// SLDT-driven wide fetches shine), while aggregation/pivot loops are affine
// (compiler regions). Tables are sized so repeated passes hit in L2
// (Table 2 L2 columns: 4.74 / 5.44 / 10.98%).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::load_field;
using ir::load_scalar;
using ir::ProgramBuilder;
using ir::store_array;
using ir::store_field;
using ir::store_scalar;
using ir::Subscript;
using ir::x;

namespace {
constexpr std::int64_t kRowSize = 64;
}  // namespace

ir::Program build_tpcd_q1() {
  constexpr std::int64_t kRows = 6000;  // 375 KB: fits L2, not L1
  constexpr std::int64_t kGroups = 8;
  constexpr std::int64_t kPivRows = 1536, kPivCols = 6;

  ProgramBuilder b("tpcd_q1");
  const auto lineitem = b.record_pool("lineitem", kRows, kRowSize);
  const auto flagidx = b.index_array("flagidx", kRows,
                                     ir::ArrayDecl::Content::Uniform, 0.0,
                                     kGroups);
  const auto agg_qty = b.array("agg_qty", {kGroups});
  const auto agg_price = b.array("agg_price", {kGroups});
  const auto pivot = b.array("pivot", {kPivRows, kPivCols}, 8, 1);
  const auto summary = b.array("summary", {kPivRows, kPivCols}, 8, 1);

  // Two scan passes (sort + aggregate in the real query plan).
  b.begin_loop("pass", 0, 2);
  {
    const auto r = b.begin_loop("row", 0, kRows);
    b.stmt({load_field(lineitem, Subscript::affine(x(r)), 0),    // quantity
            load_field(lineitem, Subscript::affine(x(r)), 8),    // price
            load_field(lineitem, Subscript::affine(x(r)), 16),   // discount
            load_field(lineitem, Subscript::affine(x(r)), 24)},  // tax
           6, "scan_fields");
    b.stmt({load_array(agg_qty, {Subscript::indexed(flagidx, x(r))}),
            store_array(agg_qty, {Subscript::indexed(flagidx, x(r))}),
            store_array(agg_price, {Subscript::indexed(flagidx, x(r))})},
           4, "aggregate");
    b.end_loop();
  }
  b.end_loop();

  // Pricing-summary pivot refresh: affine, column-hostile in BASE.
  {
    b.begin_loop("piv_rep", 0, 2);
    const auto j = b.begin_loop("pj", 0, kPivCols);
    const auto i = b.begin_loop("pi", 0, kPivRows);
    b.stmt({load_array(pivot, {b.sub(i), b.sub(j)}),
            load_array(summary, {b.sub(i), b.sub(j)}),
            store_array(summary, {b.sub(i), b.sub(j)})},
           4, "pivot_refresh");
    b.end_loop();
    b.end_loop();
    b.end_loop();
  }

  return b.finish();
}

ir::Program build_tpcd_q3() {
  constexpr std::int64_t kOrders = 3000;      // 190 KB, repeatedly scanned
  constexpr std::int64_t kCustomers = 2048;   // 128 KB: fits L2, not L1
  constexpr std::int64_t kLineRows = 3000;
  constexpr std::int64_t kLinesPerOrder = 2;

  ProgramBuilder b("tpcd_q3");
  const auto orders = b.record_pool("orders", kOrders, kRowSize);
  const auto customer = b.record_pool("customer3", kCustomers, kRowSize);
  const auto lineitem = b.record_pool("lineitem3", kLineRows, kRowSize);
  const auto custidx = b.index_array("custidx", kOrders,
                                     ir::ArrayDecl::Content::Uniform, 0.0,
                                     kCustomers);
  const auto topk = b.array("topk", {1024});

  b.begin_loop("jpass", 0, 6);
  {
    const auto o = b.begin_loop("order", 0, kOrders);
    b.stmt({load_field(orders, Subscript::affine(x(o)), 0),
            load_field(orders, Subscript::affine(x(o)), 8),
            load_field(customer, Subscript::indexed(custidx, x(o)), 0),
            load_field(customer, Subscript::indexed(custidx, x(o)), 24)},
           6, "probe");
    {
      const auto l = b.begin_loop("li", x(o) * kLinesPerOrder,
                                  x(o) * kLinesPerOrder + kLinesPerOrder);
      b.stmt({load_field(lineitem, Subscript::affine(x(l)), 8),
              load_field(lineitem, Subscript::affine(x(l)), 16)},
             4, "gather_line");
      b.end_loop();
    }
    b.end_loop();
  }
  b.end_loop();

  // Result ranking buffer update: regular affine pass (compiler region).
  {
    b.begin_loop("rank_rep", 0, 20);
    const auto k = b.begin_loop("rank", 0, 1024);
    b.stmt({load_array(topk, {b.sub(k)}),
            store_array(topk, {b.sub(k)})},
           3, "rank_update");
    b.end_loop();
    b.end_loop();
  }

  return b.finish();
}

ir::Program build_tpcd_q6() {
  constexpr std::int64_t kRows = 6144;  // 384 KB, re-scanned

  ProgramBuilder b("tpcd_q6");
  const auto lineitem = b.record_pool("lineitem6", kRows, kRowSize);
  const auto revenue = b.scalar("revenue");
  const auto bounds = b.array("bounds", {4096});

  // Precompute predicate bounds: regular loop (compiler region).
  {
    b.begin_loop("prep_rep", 0, 4);
    const auto k = b.begin_loop("prep", 0, 4096);
    b.stmt({load_array(bounds, {b.sub(k)}),
            store_array(bounds, {b.sub(k)})},
           3, "prep_bounds");
    b.end_loop();
    b.end_loop();
  }

  // Predicated scan: two passes (shipdate window, then discount band).
  b.begin_loop("pass6", 0, 2);
  {
    const auto r = b.begin_loop("row6", 0, kRows);
    b.stmt({load_field(lineitem, Subscript::affine(x(r)), 0),   // shipdate
            load_field(lineitem, Subscript::affine(x(r)), 16),  // discount
            load_field(lineitem, Subscript::affine(x(r)), 8),   // price
            load_scalar(revenue), store_scalar(revenue)},
           8, "scan_accumulate");
    b.end_loop();
  }
  b.end_loop();

  return b.finish();
}

}  // namespace selcache::workloads
