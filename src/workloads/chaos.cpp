// Chaos (CHAOS/PARTI-style unstructured-mesh kernel, mesh.2k input).
//
// Per timestep: an irregular edge phase (indexed gathers/scatters through
// mesh connectivity — clustered but not analyzable), a regular node update,
// and a regular boundary-matrix kernel whose base loop order is
// column-hostile (the software pipeline's target). Node fields fit L2 but
// not L1 (Table 2: L1 7.33%, L2 1.82%). The archetypal MIXED code.
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;
using ir::Subscript;
using ir::x;

ir::Program build_chaos() {
  constexpr std::int64_t kNodes = 8192;    // 64 KB per field array
  constexpr std::int64_t kEdges = 60000;
  constexpr std::int64_t kBr = 1536, kBc = 16;  // tall boundary matrices
  constexpr std::int64_t kSteps = 2;

  ProgramBuilder b("chaos");
  const auto xs = b.array("x", {kNodes});
  const auto fs = b.array("f", {kNodes});
  const auto vs = b.array("v", {kNodes});
  const auto bm = b.array("bmat", {kBr, kBc}, 8, 1);
  const auto bv = b.array("bvec", {kBr, kBc}, 8, 1);
  const auto ia = b.index_array("ia", 16384, ir::ArrayDecl::Content::Mesh,
                                /*hop=*/32, kNodes);
  const auto ib = b.index_array("ib", 16384, ir::ArrayDecl::Content::Mesh,
                                /*hop=*/32, kNodes);

  b.begin_loop("ts", 0, kSteps);

  // Edge force computation: gather both endpoints, scatter into one.
  {
    const auto e = b.begin_loop("edge", 0, kEdges);
    b.stmt({load_array(xs, {Subscript::indexed(ia, x(e))}),
            load_array(xs, {Subscript::indexed(ib, x(e))}),
            load_array(fs, {Subscript::indexed(ia, x(e))}),
            store_array(fs, {Subscript::indexed(ia, x(e))})},
           8, "edge_force");
    b.end_loop();
  }

  // Node update: regular streaming sweep (compiler region).
  {
    const auto n = b.begin_loop("node", 0, kNodes);
    b.stmt({load_array(fs, {b.sub(n)}),
            load_array(vs, {b.sub(n)}),
            store_array(vs, {b.sub(n)}),
            load_array(xs, {b.sub(n)}),
            store_array(xs, {b.sub(n)})},
           6, "node_update");
    b.end_loop();
  }

  // Boundary-condition matrix kernel: affine but column-hostile in BASE —
  // the compiler region the selective scheme optimizes statically.
  {
    const auto j = b.begin_loop("bj", 0, kBc);
    const auto i = b.begin_loop("bi", 0, kBr);
    b.stmt({load_array(bm, {b.sub(i), b.sub(j)}),
            load_array(bv, {b.sub(i), b.sub(j)}),
            store_array(bv, {b.sub(i), b.sub(j)})},
           4, "boundary");
    b.end_loop();
    b.end_loop();
  }

  b.end_loop();  // ts
  return b.finish();
}

}  // namespace selcache::workloads
