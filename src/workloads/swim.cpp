// Swim (SpecFP95): shallow-water finite differences on N x N grids.
//
// Three stencil phases per timestep (CALC1/CALC2/CALC3 in the original),
// each touching a different set of grids — the phase changes are what make
// always-on hardware optimization pay its stale-state tax.
//
// Calibration notes (Table 2 targets: L1 3.91%, L2 14.42%):
//  * the sweeps are unit-stride in the BASE code (real swim is not
//    column-hostile); misses come from streaming plus the one transposed
//    field `psi`, which CALC2 reads column-wise — the software pipeline's
//    data-layout selection flips psi to column-major;
//  * per-point scalar coefficient loads (fsdx/fsdy) are hot hits that the
//    optimizer hoists out of the inner loop (scalar replacement);
//  * arrays carry distinct paddings so their bases fall in different cache
//    ways (the paper applies "aggressive array padding" to its base codes).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::load_scalar;
using ir::ProgramBuilder;
using ir::store_array;
using ir::x;

ir::Program build_swim() {
  constexpr std::int64_t N = 512;  // 512x512 f64 grids = 2 MB each
  constexpr std::int64_t T = 1;    // timesteps (phases inside dominate)

  ProgramBuilder b("swim");
  const auto u = b.array("u", {N, N}, 8, 544);
  const auto v = b.array("v", {N, N}, 8, 1088);
  const auto p = b.array("p", {N, N}, 8, 1632);
  const auto cu = b.array("cu", {N, N}, 8, 2176);
  const auto cv = b.array("cv", {N, N}, 8, 2720);
  const auto z = b.array("z", {N, N}, 8, 3264);
  const auto unew = b.array("unew", {N, N}, 8, 3808);
  const auto pnew = b.array("pnew", {N, N}, 8, 4352);
  const auto psi = b.array("psi", {N, N}, 8, 4896);  // read transposed
  const auto fsdx = b.scalar("fsdx");
  const auto fsdy = b.scalar("fsdy");

  b.begin_loop("t", 0, T);

  // CALC1: fluxes cu, cv from u, v, p. Unit stride; scalar coefficients.
  {
    const auto i = b.begin_loop("i1", 0, N);
    const auto j = b.begin_loop("j1", 0, N);
    b.stmt({load_scalar(fsdx), load_array(u, {b.sub(i), b.sub(j)}),
            load_array(u, {b.sub(i), b.sub(j, 1)}),
            load_array(p, {b.sub(i), b.sub(j)}),
            store_array(cu, {b.sub(i), b.sub(j)})},
           6, "calc1_cu");
    b.stmt({load_scalar(fsdy), load_array(v, {b.sub(i), b.sub(j)}),
            load_array(v, {b.sub(i, 1), b.sub(j)}),
            load_array(p, {b.sub(i), b.sub(j)}),
            store_array(cv, {b.sub(i), b.sub(j)})},
           6, "calc1_cv");
    b.end_loop();
    b.end_loop();
  }

  // CALC2: new height field; psi is read transposed (column walk in the
  // base layout — the data-transformation target).
  {
    const auto i = b.begin_loop("i2", 0, N);
    const auto j = b.begin_loop("j2", 0, N);
    b.stmt({load_array(cu, {b.sub(i), b.sub(j)}),
            load_array(cu, {b.sub(i), b.sub(j, -1)}),
            load_array(cv, {b.sub(i), b.sub(j)}),
            load_array(cv, {b.sub(i, -1), b.sub(j)}),
            load_array(psi, {b.sub(j), b.sub(i)}),
            store_array(pnew, {b.sub(i), b.sub(j)})},
           8, "calc2_p");
    b.stmt({load_array(u, {b.sub(i), b.sub(j)}),
            load_array(z, {b.sub(i), b.sub(j)}),
            store_array(unew, {b.sub(i), b.sub(j)})},
           5, "calc2_u");
    b.end_loop();
    b.end_loop();
  }

  // CALC3: time smoothing / copy-back.
  {
    const auto i = b.begin_loop("i3", 0, N);
    const auto j = b.begin_loop("j3", 0, N);
    b.stmt({load_array(unew, {b.sub(i), b.sub(j)}),
            store_array(u, {b.sub(i), b.sub(j)})},
           3, "calc3_u");
    b.stmt({load_array(pnew, {b.sub(i), b.sub(j)}),
            store_array(p, {b.sub(i), b.sub(j)}),
            store_array(z, {b.sub(i), b.sub(j)})},
           3, "calc3_p");
    b.end_loop();
    b.end_loop();
  }

  b.end_loop();  // t
  return b.finish();
}

}  // namespace selcache::workloads
