// Li (SpecInt95, xlisp): Lisp interpreter.
//
// Evaluation walks a small hot heap of cons cells (12 KB pointer chase —
// allocation locality keeps xlisp's live set tiny) with Zipf environment
// lookups; every round a mark-sweep pass streams the 256 KB old space. The
// eval/GC alternation is a textbook phase change for the hardware schemes,
// and the sweep is the cold stream that evicts the hot heap. Table 2
// targets: L1 1.95%, L2 3.73%.
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::chase;
using ir::load_field;
using ir::ProgramBuilder;
using ir::store_field;
using ir::Subscript;
using ir::x;

ir::Program build_li() {
  constexpr std::int64_t kRounds = 6;
  constexpr std::int64_t kEvalsPerRound = 30000;
  constexpr std::int64_t kHotCells = 768;       // 12 KB hot heap
  constexpr std::int64_t kOldSpace = 16384;     // 16K x 16B = 256 KB
  constexpr std::int64_t kEnvSlots = 192;       // 12 KB environment

  ProgramBuilder b("li");
  const auto heap = b.chase_pool("heap", kHotCells, 16);
  const auto oldspace = b.record_pool("oldspace", kOldSpace, 16);
  const auto env = b.record_pool("env", kEnvSlots, 64);
  const auto envidx = b.index_array("envidx", 8192,
                                    ir::ArrayDecl::Content::Zipf, 0.7,
                                    kEnvSlots);

  b.begin_loop("round", 0, kRounds);

  // Eval: follow car/cdr chains, consult the environment.
  {
    const auto e = b.begin_loop("eval", 0, kEvalsPerRound);
    b.stmt({chase(heap, 0),   // car
            chase(heap, 8)},  // cdr
           5, "cons_walk");
    b.stmt({load_field(env, Subscript::indexed(envidx, x(e)), 0),
            store_field(env, Subscript::indexed(envidx, x(e)), 8)},
           4, "env_lookup");
    b.end_loop();
  }

  // Mark-sweep: stream every old-space cell's header sequentially.
  {
    const auto c = b.begin_loop("sweep", 0, kOldSpace);
    b.stmt({load_field(oldspace, Subscript::affine(x(c)), 0),
            store_field(oldspace, Subscript::affine(x(c)), 8)},
           2, "sweep_cell");
    b.end_loop();
  }

  b.end_loop();  // round
  return b.finish();
}

}  // namespace selcache::workloads
