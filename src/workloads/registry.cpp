#include "workloads/registry.h"

#include "support/check.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

const std::vector<WorkloadInfo>& all_workloads() {
  static const std::vector<WorkloadInfo> kAll = {
      {"Perl", "primes.in", Category::Irregular, build_perl, 11.2, 2.82, 1.6},
      {"Compress", "training", Category::Irregular, build_compress, 58.2,
       3.64, 10.07},
      {"Li", "train.lsp", Category::Irregular, build_li, 186.8, 1.95, 3.73},
      {"Swim", "train", Category::Regular, build_swim, 877.5, 3.91, 14.42},
      {"Applu", "train", Category::Irregular, build_applu, 526.0, 5.05,
       13.22},
      {"Mgrid", "mgrid.in", Category::Regular, build_mgrid, 78.7, 4.51, 3.34},
      {"Chaos", "mesh.2k", Category::Mixed, build_chaos, 248.4, 7.33, 1.82},
      {"Vpenta", "fills L2", Category::Regular, build_vpenta, 126.7, 52.17,
       39.79},
      {"Adi", "fills L2", Category::Regular, build_adi, 126.9, 25.02, 53.49},
      {"TPC-C", "TPC tools", Category::Mixed, build_tpcc, 16.5, 6.15, 12.57},
      {"TPC-D,Q1", "TPC tools", Category::Mixed, build_tpcd_q1, 38.9, 9.85,
       4.74},
      {"TPC-D,Q3", "TPC tools", Category::Mixed, build_tpcd_q3, 67.7, 13.62,
       5.44},
      {"TPC-D,Q6", "TPC tools", Category::Mixed, build_tpcd_q6, 32.4, 4.20,
       10.98},
  };
  return kAll;
}

const WorkloadInfo& workload(const std::string& name) {
  for (const auto& w : all_workloads())
    if (w.name == name) return w;
  SELCACHE_CHECK_MSG(false, "unknown workload: " + name);
  // Unreachable; SELCACHE_CHECK_MSG throws.
  return all_workloads().front();
}

}  // namespace selcache::workloads
