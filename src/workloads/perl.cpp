// Perl (SpecInt95, primes.in): bytecode interpreter.
//
// The dynamic mix is dominated by non-analyzable references: walking the op
// tree (pointer chase), symbol-table lookups (Zipf-skewed record accesses)
// and stack slots. Between interpretation bursts the interpreter scans the
// source/string buffer — the cold stream that evicts the hot structures and
// gives MAT-based bypassing its win. Hot set (~32 KB: op tree 16 KB +
// symtab 12 KB + stack 4 KB) just fits L1 until the text stream evicts it
// (Table 2: L1 2.82%, L2 1.6%).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::chase;
using ir::load_array;
using ir::load_field;
using ir::ProgramBuilder;
using ir::store_array;
using ir::store_field;
using ir::Subscript;
using ir::x;

ir::Program build_perl() {
  constexpr std::int64_t kBursts = 32;
  constexpr std::int64_t kOpsPerBurst = 384;
  constexpr std::int64_t kTreeNodes = 512;   // 512 x 32B = 16 KB op tree
  constexpr std::int64_t kSymbols = 192;     // 192 x 64B = 12 KB symtab
  constexpr std::int64_t kStackSlots = 256;  // 4 KB

  ProgramBuilder b("perl");
  const auto optree = b.chase_pool("optree", kTreeNodes, 32);
  const auto symtab = b.record_pool("symtab", kSymbols, 64);
  const auto stack = b.record_pool("stack", kStackSlots, 16);
  const auto symidx = b.index_array("symidx", 2048,
                                    ir::ArrayDecl::Content::Zipf,
                                    /*theta=*/0.8, kSymbols);
  // The scanner walks the text with char pointers (s = *p++ style), so
  // these are struct/pointer references — NON-analyzable, like the rest of
  // perl — even though the traversal happens to be sequential.
  const auto text = b.record_pool("text", 32768, 8);    // 256 KB source text
  const auto strout = b.record_pool("strout", 1024, 8); // 8 KB out buffer

  const auto burst = b.begin_loop("burst", 0, kBursts);

  // Interpretation burst: op fetch (chase), symbol lookup, stack update.
  {
    const auto op = b.begin_loop("op", 0, kOpsPerBurst);
    b.stmt({chase(optree, 0),   // next op node
            chase(optree, 8)},  // operand word
           5, "fetch_op");
    b.stmt({load_field(symtab,
                       Subscript::indexed(symidx,
                                          x(burst) * kOpsPerBurst + x(op)),
                       0),
            store_field(stack, Subscript::affine(x(op)), 0)},
           6, "lookup");
    b.end_loop();
  }

  // Between bursts: scan a slice of the source text (the cold stream).
  {
    const auto s = b.begin_loop("scan", x(burst) * 256,
                                x(burst) * 256 + 256);
    b.stmt({load_field(text, Subscript::affine(x(s)), 0),
            store_field(strout, Subscript::affine(x(s) - x(burst) * 2048), 0)},
           3, "text_scan");
    b.end_loop();
  }

  b.end_loop();  // burst
  return b.finish();
}

}  // namespace selcache::workloads
