// Mgrid (SpecFP95): multigrid V-cycle on a hierarchy of grids.
//
// Smooth -> restrict -> smooth -> solve -> prolong across three
// resolutions. Every level switch is a phase change over a different
// working set — the pattern that makes stale MAT state (and victim-cache
// contents) from one level hurt the next when the hardware runs
// unconditionally. Sweeps are unit-stride; the prolongation reads a
// transposed workspace (layout-selection target). Grids sized so the fine
// level fits L2 (Table 2: L1 4.51%, L2 3.34%).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;

namespace {

void smooth(ProgramBuilder& b, ir::ArrayId u, ir::ArrayId r, std::int64_t n,
            const std::string& tag) {
  const auto i = b.begin_loop("i" + tag, 1, n - 1);
  const auto j = b.begin_loop("j" + tag, 1, n - 1);
  b.stmt({load_array(r, {b.sub(i), b.sub(j)}),
          load_array(u, {b.sub(i, -1), b.sub(j)}),
          load_array(u, {b.sub(i, 1), b.sub(j)}),
          load_array(u, {b.sub(i), b.sub(j, -1)}),
          load_array(u, {b.sub(i), b.sub(j, 1)}),
          store_array(u, {b.sub(i), b.sub(j)})},
         9, "smooth" + tag);
  b.end_loop();
  b.end_loop();
}

}  // namespace

ir::Program build_mgrid() {
  constexpr std::int64_t N0 = 160, N1 = 80, N2 = 40;

  ProgramBuilder b("mgrid");
  const auto u0 = b.array("u0", {N0, N0}, 8, 8);
  const auto r0 = b.array("r0", {N0, N0}, 8, 24);
  const auto u1 = b.array("u1", {N1, N1}, 8, 8);
  const auto r1 = b.array("r1", {N1, N1}, 8, 24);
  const auto u2 = b.array("u2", {N2, N2});
  const auto r2 = b.array("r2", {N2, N2});
  const auto w1 = b.array("w1", {N1, N1});  // workspace, read transposed

  b.begin_loop("cycle", 0, 2);

  smooth(b, u0, r0, N0, "s0");

  // Restrict fine residual to the medium grid.
  {
    const auto i = b.begin_loop("ir1", 0, N1);
    const auto j = b.begin_loop("jr1", 0, N1);
    b.stmt({load_array(u0, {b.sub(ir::x(i) * 2), b.sub(ir::x(j) * 2)}),
            load_array(r0, {b.sub(ir::x(i) * 2), b.sub(ir::x(j) * 2)}),
            store_array(r1, {b.sub(i), b.sub(j)})},
           5, "restrict1");
    b.end_loop();
    b.end_loop();
  }

  smooth(b, u1, r1, N1, "s1");

  // Restrict to the coarse grid, solve there.
  {
    const auto i = b.begin_loop("ir2", 0, N2);
    const auto j = b.begin_loop("jr2", 0, N2);
    b.stmt({load_array(r1, {b.sub(ir::x(i) * 2), b.sub(ir::x(j) * 2)}),
            store_array(r2, {b.sub(i), b.sub(j)})},
           4, "restrict2");
    b.end_loop();
    b.end_loop();
  }
  smooth(b, u2, r2, N2, "s2");

  // Prolong coarse corrections back up; the workspace w1 is walked
  // transposed (data-layout selection flips it to column-major).
  {
    const auto i = b.begin_loop("ip1", 0, N1);
    const auto j = b.begin_loop("jp1", 0, N1);
    b.stmt({load_array(u2, {b.sub(i), b.sub(j)}),
            load_array(w1, {b.sub(j), b.sub(i)}),
            load_array(u1, {b.sub(i), b.sub(j)}),
            store_array(u1, {b.sub(i), b.sub(j)})},
           5, "prolong1");
    b.end_loop();
    b.end_loop();
  }
  {
    const auto i = b.begin_loop("ip0", 0, N0);
    const auto j = b.begin_loop("jp0", 0, N0);
    b.stmt({load_array(u1, {b.sub(i), b.sub(j)}),
            load_array(u0, {b.sub(i), b.sub(j)}),
            store_array(u0, {b.sub(i), b.sub(j)})},
           4, "prolong0");
    b.end_loop();
    b.end_loop();
  }

  b.end_loop();  // cycle
  return b.finish();
}

}  // namespace selcache::workloads
