// TPC-C: new-order transaction mix over synthetic tables (§4.2: "we
// implemented a code segment performing the necessary operations").
//
// Per transaction: warehouse/district header reads, a Zipf-skewed customer
// lookup, then per order line an item lookup (hot) and a stock update
// (large, uniform — the L2-busting table). A district/item revenue matrix
// is re-aggregated periodically with a column-hostile loop order: the
// regular region the compiler fixes. MIXED. Table 2 targets: L1 6.15%,
// L2 12.57%.
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::load_field;
using ir::ProgramBuilder;
using ir::store_array;
using ir::store_field;
using ir::Subscript;
using ir::x;

ir::Program build_tpcc() {
  constexpr std::int64_t kTxns = 1200;
  constexpr std::int64_t kLines = 10;         // order lines per transaction
  constexpr std::int64_t kCustomers = 24576;  // 24K x 64B = 1.5 MB
  constexpr std::int64_t kStock = 32768;      // 32K x 64B = 2 MB
  constexpr std::int64_t kItems = 4096;       // hot, 256 KB
  constexpr std::int64_t kRepRows = 1536, kRepCols = 16;

  ProgramBuilder b("tpcc");
  const auto warehouse = b.record_pool("warehouse", 64, 64);
  const auto customer = b.record_pool("customer", kCustomers, 64);
  const auto stock = b.record_pool("stock", kStock, 64);
  const auto item = b.record_pool("item", kItems, 64);
  const auto cidx = b.index_array("cidx", kTxns,
                                  ir::ArrayDecl::Content::Zipf, 0.85,
                                  kCustomers);
  const auto sidx = b.index_array("sidx", 8192,
                                  ir::ArrayDecl::Content::Uniform, 0.0,
                                  kStock);
  const auto iidx = b.index_array("iidx", 8192,
                                  ir::ArrayDecl::Content::Zipf, 1.2, kItems);
  const auto amounts = b.array("amounts", {kLines});
  const auto report = b.array("report", {kRepRows, kRepCols}, 8, 1);
  const auto revenue = b.array("revenue", {kRepRows, kRepCols}, 8, 1);

  const auto t = b.begin_loop("txn", 0, kTxns);

  // Transaction header: warehouse + customer.
  b.stmt({load_field(warehouse, Subscript::affine(x(t)), 0),
          load_field(customer, Subscript::indexed(cidx, x(t)), 0),
          load_field(customer, Subscript::indexed(cidx, x(t)), 32),
          store_field(customer, Subscript::indexed(cidx, x(t)), 48)},
         6, "header");

  // Order lines: item read + stock update.
  {
    const auto l = b.begin_loop("line", x(t) * kLines,
                                x(t) * kLines + kLines);
    b.stmt({load_field(item, Subscript::indexed(iidx, x(l)), 0),
            load_field(item, Subscript::indexed(iidx, x(l)), 8),
            load_array(amounts, {b.sub(ir::x(l) - ir::x(t) * kLines)}),
            store_array(amounts, {b.sub(ir::x(l) - ir::x(t) * kLines)}),
            load_field(stock, Subscript::indexed(sidx, x(l)), 0),
            store_field(stock, Subscript::indexed(sidx, x(l)), 16)},
           8, "order_line");
    b.end_loop();
  }

  b.end_loop();  // txn

  // District/item revenue report: affine, column-hostile in BASE — the
  // compiler region.
  {
    b.begin_loop("rep", 0, 2);
    const auto j = b.begin_loop("rj", 0, kRepCols);
    const auto i = b.begin_loop("ri", 0, kRepRows);
    b.stmt({load_array(report, {b.sub(i), b.sub(j)}),
            load_array(revenue, {b.sub(i), b.sub(j)}),
            store_array(revenue, {b.sub(i), b.sub(j)})},
           4, "report_agg");
    b.end_loop();
    b.end_loop();
    b.end_loop();
  }

  return b.finish();
}

}  // namespace selcache::workloads
