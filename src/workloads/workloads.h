// The paper's 13-benchmark suite (§4.2), rebuilt as synthetic IR programs.
//
// Each builder returns the BASE program: the loop order / layouts / access
// patterns the original (non-locality-optimized, O3) code would exhibit.
// The compiler pipeline derives the optimized and selective products.
//
// Categories follow §4.2:
//   regular:   Swim, Mgrid, Vpenta, Adi
//   irregular: Perl, Li, Compress, Applu
//   mixed:     Chaos, TPC-C, TPC-D Q1/Q3/Q6
//
// Sizes are scaled ~1/50 from Table 2's instruction counts (recorded per
// benchmark in EXPERIMENTS.md); working sets are sized so the BASE miss
// rates land in the neighbourhood of Table 2 under the Table 1 machine.
#pragma once

#include "ir/program.h"

namespace selcache::workloads {

ir::Program build_perl();
ir::Program build_compress();
ir::Program build_li();
ir::Program build_swim();
ir::Program build_applu();
ir::Program build_mgrid();
ir::Program build_chaos();
ir::Program build_vpenta();
ir::Program build_adi();
ir::Program build_tpcc();
ir::Program build_tpcd_q1();
ir::Program build_tpcd_q3();
ir::Program build_tpcd_q6();

}  // namespace selcache::workloads
