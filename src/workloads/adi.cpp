// Adi (Livermore kernel 8 flavor): Alternating-Direction-Implicit
// integration. Each timestep sweeps once along rows and once along columns;
// the BASE code runs both sweeps with the same (wrong for one of them) loop
// order. Arrays overflow L2 (Table 2: base L2 miss 53%).
#include "ir/builder.h"
#include "workloads/workloads.h"

namespace selcache::workloads {

using ir::load_array;
using ir::ProgramBuilder;
using ir::store_array;

ir::Program build_adi() {
  constexpr std::int64_t N = 448;  // 448x448 f64 = 1.6 MB per array
  constexpr std::int64_t T = 1;

  ProgramBuilder b("adi");
  const auto xx = b.array("x", {N, N}, 8, 8);
  const auto aa = b.array("a", {N, N}, 8, 24);
  const auto yy = b.array("y", {N, N}, 8, 40);
  const auto bb = b.array("bm", {N, N}, 8, 56);

  b.begin_loop("t", 0, T);

  // Row sweep: recurrence along j, unit stride in the BASE code (this half
  // of ADI is layout-friendly as written).
  {
    const auto i = b.begin_loop("ir", 0, N);
    const auto j = b.begin_loop("jr", 1, N);
    b.stmt({load_array(xx, {b.sub(i), b.sub(j, -1)}),
            load_array(aa, {b.sub(i), b.sub(j)}),
            store_array(xx, {b.sub(i), b.sub(j)})},
           5, "row_sweep");
    b.end_loop();
    b.end_loop();
  }

  // Column sweep: recurrence along i on transposed-view arrays y/bm —
  // y[j][i] patterns whose locality only a column-major layout (or the
  // interchange the dependence happens to allow) restores.
  {
    const auto j = b.begin_loop("jc", 0, N);
    const auto i = b.begin_loop("ic", 1, N);
    b.stmt({load_array(yy, {b.sub(i, -1), b.sub(j)}),
            load_array(bb, {b.sub(i), b.sub(j)}),
            store_array(yy, {b.sub(i), b.sub(j)})},
           5, "col_sweep");
    b.end_loop();
    b.end_loop();
  }

  b.end_loop();  // t
  return b.finish();
}

}  // namespace selcache::workloads
